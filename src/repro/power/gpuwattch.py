"""GPUWattch-style activity/energy accounting.

Converts the simulator's per-kernel activity counters into per-component
energies and average/peak power, reproducing the paper's three power
figures:

* Figure 3 — peak power per network = the most power-hungry kernel's
  average power (peak across layers), which tracks layer size because
  larger layers light up more SMs concurrently (Observation 3).
* Figure 4 — per-layer-type power shares, computed from each category's
  average power (energy over that category's own time), which comes out
  far more balanced than the execution-time split because every layer
  type pays cache/memory energy (Observation 4).
* Figure 5 — per-component breakdown, dominated by RF, L2C and
  IDLE_CORE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GpuConfig
from repro.gpu.simulator import KernelResult, NetworkResult
from repro.isa.opcodes import Pipe
from repro.power.energy_table import DEFAULT_ENERGY, FIGURE5_ORDER, EnergyTable
from repro.profiling.stats import KernelStats

PJ = 1e-12


@dataclass
class ComponentPower:
    """Average power in watts per Figure 5 component, over some window."""

    watts: dict[str, float]

    @property
    def total(self) -> float:
        """Total average power of the window."""
        return sum(self.watts.values())

    def fractions(self) -> dict[str, float]:
        """Per-component share of total power."""
        total = self.total
        if total <= 0:
            return {key: 0.0 for key in self.watts}
        return {key: value / total for key, value in self.watts.items()}


class GpuWattchModel:
    """Activity x energy power model over simulator statistics."""

    def __init__(self, config: GpuConfig, energy: EnergyTable | None = None):
        self.config = config
        # The default table is calibrated for the 250W GP102 class;
        # other platforms (the 15W TX1) get a TDP-scaled derivative.
        self.energy = energy or DEFAULT_ENERGY.scaled_for_tdp(config.tdp_watts)

    # ------------------------------------------------------------------
    def component_energy_joules(self, stats: KernelStats) -> dict[str, float]:
        """Total energy per component for the window *stats* covers."""
        e = self.energy
        issued = stats.issued
        by_pipe = stats.issued_by_pipe
        transactions = stats.load_transactions + stats.store_transactions
        l2_traffic = stats.l2_accesses
        dram_requests = stats.l2_misses

        energy: dict[str, float] = {
            "IB": issued * e.ib_pj,
            "IC": issued * e.ic_pj,
            "DC": stats.l1_accesses * e.dc_pj,
            "TC": 0.0,
            "CC": stats.const_accesses * e.cc_pj,
            "SHRD": stats.shared_accesses * e.shrd_pj,
            "RF": (stats.rf_reads + stats.rf_writes) * e.rf_pj,
            "SP": by_pipe.get(Pipe.SP, 0.0) * e.sp_pj,
            "SFU": by_pipe.get(Pipe.SFU, 0.0) * e.sfu_pj,
            "FPU": by_pipe.get(Pipe.FPU, 0.0) * e.fpu_pj,
            "SCHED": issued * e.sched_pj,
            "L2C": l2_traffic * e.l2c_pj,
            "MC": dram_requests * e.mc_pj,
            "NOC": transactions * e.noc_pj,
            "DRAM": stats.dram_bytes * e.dram_pj_per_byte,
            "PIPE": issued * e.pipe_pj,
        }
        core_dynamic = sum(energy.values())
        energy["CONST_DYNAMIC"] = core_dynamic * e.const_dynamic_fraction
        # Static energy: every powered SM leaks for the whole window.
        window_s = self.window_seconds(stats)
        energy["IDLE_CORE"] = (
            self.config.num_sms * e.idle_sm_watts + e.uncore_static_watts
        ) * window_s
        return {key: value * (PJ if key != "IDLE_CORE" else 1.0) for key, value in energy.items()}

    def window_seconds(self, stats: KernelStats) -> float:
        """Wall-clock duration of the window *stats* covers."""
        return stats.cycles / (self.config.clock_ghz * 1e9)

    @property
    def static_watts(self) -> float:
        """Whole-chip static power (SM leakage plus uncore), in watts.

        The time-proportional half of the energy model: multiplied by
        any window's duration it yields that window's ``IDLE_CORE``
        energy, which is how the campaign QoR layer extrapolates
        batch-``b`` energy from a batch-1 activity profile.
        """
        return (
            self.config.num_sms * self.energy.idle_sm_watts
            + self.energy.uncore_static_watts
        )

    def dynamic_energy_joules(self, stats: KernelStats) -> float:
        """Activity-proportional energy of a window (everything except
        the static ``IDLE_CORE`` term)."""
        energy = self.component_energy_joules(stats)
        return sum(value for key, value in energy.items() if key != "IDLE_CORE")

    # ------------------------------------------------------------------
    def kernel_power(self, result: KernelResult) -> ComponentPower:
        """Average power of one kernel launch."""
        return self.stats_power(result.stats)

    def stats_power(self, stats: KernelStats) -> ComponentPower:
        """Average power of an arbitrary stats window."""
        window = self.window_seconds(stats)
        if window <= 0:
            return ComponentPower({key: 0.0 for key in FIGURE5_ORDER})
        energy = self.component_energy_joules(stats)
        return ComponentPower({key: energy[key] / window for key in FIGURE5_ORDER})

    # ------------------------------------------------------------------
    def peak_power(self, result: NetworkResult) -> float:
        """Figure 3: the highest per-kernel average power of the run."""
        return max(self.kernel_power(k).total for k in result.kernels)

    def peak_kernel(self, result: NetworkResult) -> KernelResult:
        """The kernel that sets the network's peak power."""
        return max(result.kernels, key=lambda k: self.kernel_power(k).total)

    def category_power(self, result: NetworkResult) -> dict[str, float]:
        """Figure 4: average power per layer-type category."""
        out: dict[str, float] = {}
        for category, stats in result.stats_by_category().items():
            out[category] = self.stats_power(stats).total
        return out

    def network_breakdown(self, result: NetworkResult) -> ComponentPower:
        """Figure 5: per-component average power over the whole run."""
        return self.stats_power(result.aggregate())

    def network_energy_joules(self, result: NetworkResult) -> float:
        """Total energy of one inference run."""
        return sum(self.component_energy_joules(result.aggregate()).values())
