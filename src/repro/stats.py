"""The common protocol every result container speaks.

Three layers emit aggregate results — :class:`repro.profiling.stats.KernelStats`
from the GPU simulator, :class:`repro.serve.stats.ServeStats` from the
serving engine and :class:`repro.runs.executor.ExecutionReport` from the
run pipeline — and before this protocol each grew its own ad-hoc
serialization surface.  :class:`Stats` pins the shared contract:

* ``to_dict()`` — a stable, JSON-serializable mapping;
* ``from_dict(data)`` — the exact inverse (classmethod), raising on
  malformed input rather than guessing;
* ``summary()`` — a one-line human rendering for logs and CLIs.

The protocol is ``runtime_checkable``, so consumers (the tracer's span
metadata, report writers, tests) can ``isinstance``-gate on it without
importing any concrete class.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Stats(Protocol):
    """Structural interface of every aggregate result container."""

    def to_dict(self) -> dict:
        """Stable JSON-serializable form."""
        ...

    @classmethod
    def from_dict(cls, data: dict) -> "Stats":
        """Inverse of :meth:`to_dict`; raises on malformed input."""
        ...

    def summary(self) -> str:
        """One-line human rendering."""
        ...
