"""GPU memory-system models: coalescer, caches, MSHRs, DRAM.

These are the components GPGPU-Sim models that the paper's cache
studies exercise: the configurable/bypassable L1 data cache (Figure 2),
the shared L2 whose misses and miss ratios Figures 13-14 report, the
MSHR file whose exhaustion produces ``memory_throttle`` stalls
(Figure 7), and the DRAM bandwidth model behind memory latency.
"""

from repro.memory.cache import Cache
from repro.memory.coalescer import coalesce
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mshr import MshrFile

__all__ = ["Cache", "Dram", "MemoryHierarchy", "MshrFile", "coalesce"]
