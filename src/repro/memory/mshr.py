"""Miss-status holding registers (MSHRs).

Each in-flight L1 miss occupies one MSHR entry; further misses to the
same line merge into the entry up to a merge limit.  When every entry is
busy the LD/ST unit refuses the access and the warp replays — nvprof's
``memory_throttle`` stall, which the paper shows dominating
fully-connected layers (Figure 7).
"""

from __future__ import annotations

import heapq


class MshrFile:
    """A fixed pool of miss-status holding registers."""

    def __init__(self, entries: int, max_merges: int = 8) -> None:
        if entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = entries
        self.max_merges = max_merges
        self._inflight: dict[int, int] = {}  # line -> merge count
        self._releases: list[tuple[int, int]] = []  # (ready_cycle, line) heap
        self._hold_until = 0
        self._held = False
        self.throttle_events = 0.0

    def hold_until(self, cycle: int) -> None:
        """Keep one entry logically busy until *cycle*.

        Models an access wider than the file being replayed in waves:
        the LSU stays occupied with it until the final wave completes.
        """
        self._hold_until = max(self._hold_until, cycle)

    def drain(self, now: int) -> None:
        """Release every entry whose fill completed by *now*."""
        self._held = now < self._hold_until
        while self._releases and self._releases[0][0] <= now:
            _, line = heapq.heappop(self._releases)
            count = self._inflight.get(line, 0)
            if count <= 1:
                self._inflight.pop(line, None)
            else:
                self._inflight[line] = count - 1

    def reserve(self, line: int, ready_cycle: int, now: int, weight: float = 1.0) -> bool:
        """Try to track a miss to *line*; False means throttled.

        A miss to a line already in flight merges into its entry (if the
        merge limit allows); otherwise a free entry is required.
        """
        self.drain(now)
        if line in self._inflight:
            if self._inflight[line] >= self.max_merges:
                self.throttle_events += weight
                return False
            self._inflight[line] += 1
            heapq.heappush(self._releases, (ready_cycle, line))
            return True
        if len(self._inflight) >= self.capacity:
            self.throttle_events += weight
            return False
        self._inflight[line] = 1
        heapq.heappush(self._releases, (ready_cycle, line))
        return True

    @property
    def in_use(self) -> int:
        """Entries currently allocated (including a held wide access)."""
        return len(self._inflight) + (1 if self._held else 0)

    def next_release(self) -> int | None:
        """Cycle at which the next entry frees, if any are in flight."""
        if self._releases:
            return self._releases[0][0]
        if self._held:
            return self._hold_until
        return None
