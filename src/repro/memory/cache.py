"""Set-associative cache with LRU replacement.

Used for the L1 data cache (per SM, sizeable and bypassable — the
Figure 2 sweep), the L2 slice, and the small constant cache.  The model
is a tag store only: hit/miss behaviour and statistics, no data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss counters; ``weighted_*`` honour sampling weights."""

    accesses: float = 0.0
    hits: float = 0.0
    misses: float = 0.0

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over all accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate *other* into this instance."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses


class Cache:
    """A set-associative LRU tag store.

    A ``size_bytes`` of 0 models a bypassed cache: every access misses
    and nothing is allocated (the paper's "No L1" configuration).
    """

    def __init__(
        self, name: str, size_bytes: int, line_bytes: int = 128, assoc: int = 8
    ) -> None:
        if size_bytes < 0:
            raise ValueError("cache size must be non-negative")
        if line_bytes <= 0 or (line_bytes & (line_bytes - 1)):
            raise ValueError("line_bytes must be a positive power of two")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.assoc = max(1, assoc)
        n_lines = size_bytes // line_bytes
        self.n_sets = max(1, n_lines // self.assoc) if n_lines else 0
        # Each set is an LRU-ordered dict of tags (most recent last):
        # insertion order is the recency order, membership is O(1), and
        # evicting the first key equals popping an LRU list's head.
        self._sets: list[dict[int, None]] = [{} for _ in range(self.n_sets)]
        self._index_shift = max(1, self.n_sets.bit_length() - 1)
        # line_bytes is a power of two (checked above): tag extraction
        # is a shift, measurably cheaper than division on the hot path.
        self._line_shift = line_bytes.bit_length() - 1
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        """Hashed set index (XOR-folded), as GPU caches use to avoid
        pathological conflicts on power-of-two strides — e.g. the
        4 KB-apart weight rows of a fully-connected layer."""
        return (line ^ (line >> self._index_shift)) % self.n_sets

    @property
    def enabled(self) -> bool:
        """False when the cache is bypassed (zero capacity)."""
        return self.n_sets > 0

    def access(self, addr: int, weight: float = 1.0, allocate: bool = True) -> bool:
        """Look up the line containing *addr*; returns True on hit.

        Args:
            addr: Byte address.
            weight: Sampling weight added to the counters.
            allocate: Allocate on miss (write-through no-allocate stores
                pass False).
        """
        stats = self.stats
        stats.accesses += weight
        n_sets = self.n_sets
        if not n_sets:  # bypassed
            stats.misses += weight
            return False
        tag = addr >> self._line_shift
        entry = self._sets[(tag ^ (tag >> self._index_shift)) % n_sets]
        if tag in entry:
            # Move to MRU position (re-insertion puts the key last).
            del entry[tag]
            entry[tag] = None
            stats.hits += weight
            return True
        stats.misses += weight
        if allocate:
            if len(entry) >= self.assoc:
                del entry[next(iter(entry))]
            entry[tag] = None
        return False

    def access_many(self, addrs, weight: float = 1.0) -> list[int]:
        """Allocate-on-miss lookup of every address in *addrs*, in order.

        Returns the missing addresses (as plain ints, original order).
        Statistics and LRU state end up exactly as an ``access()`` call
        per address would leave them: the counters take one ``+=
        weight`` per address in the same sequence, so sampled float
        weights accumulate bit-identically.
        """
        stats = self.stats
        n_sets = self.n_sets
        missed: list[int] = []
        if not n_sets:  # bypassed
            for addr in addrs:
                stats.accesses += weight
                stats.misses += weight
                missed.append(int(addr))
            return missed
        line_shift = self._line_shift
        shift = self._index_shift
        sets = self._sets
        assoc = self.assoc
        for addr in addrs:
            stats.accesses += weight
            addr = int(addr)
            tag = addr >> line_shift
            entry = sets[(tag ^ (tag >> shift)) % n_sets]
            if tag in entry:
                del entry[tag]
                entry[tag] = None
                stats.hits += weight
            else:
                stats.misses += weight
                if len(entry) >= assoc:
                    del entry[next(iter(entry))]
                entry[tag] = None
                missed.append(addr)
        return missed

    def bulk_warm(self, addrs) -> tuple[int, int]:
        """Replay *addrs* as zero-weight allocate-on-miss accesses.

        Exactly equivalent to ``access(a, weight=0.0)`` per address, in
        order — the warm path of :meth:`repro.gpu.vector.VectorWave` —
        but resolved per *set* with array arithmetic: zero-weight
        accesses leave every statistic unchanged (``x + 0.0 == x`` for
        the non-negative counters), so the only observable effect is the
        final tag/LRU state.  For a set that starts empty and sees at
        most ``assoc`` distinct tags, no access can ever evict, so every
        access either inserts or moves its tag to MRU and the final
        state is simply the distinct tags ordered by last occurrence —
        computed here from numpy set-index/tag arrays without touching
        Python per access.  Sets that start non-empty or overflow the
        associativity fall back to the scalar replay (their evictions
        depend on the full access order).

        Returns ``(vectorized_sets, scalar_sets)`` for observability.
        """
        n_sets = self.n_sets
        if not n_sets or len(addrs) == 0:
            return 0, 0
        shift = self._index_shift
        if len(addrs) < 256:
            # Tiny replays: numpy's unique/lexsort fixed cost outruns
            # the win; do the plain in-order replay (same end state).
            sets = self._sets
            assoc = self.assoc
            line_shift = self._line_shift
            touched = set()
            for addr in addrs:
                tag = int(addr) >> line_shift
                s = (tag ^ (tag >> shift)) % n_sets
                touched.add(s)
                entry = sets[s]
                if tag in entry:
                    del entry[tag]
                    entry[tag] = None
                else:
                    if len(entry) >= assoc:
                        del entry[next(iter(entry))]
                    entry[tag] = None
            return 0, len(touched)
        arr = np.asarray(addrs, dtype=np.int64)
        tags = arr >> self._line_shift
        # Distinct tags ordered by *last* occurrence: first occurrence
        # in the reversed stream is the last in the original.
        rev_uniq, rev_first = np.unique(tags[::-1], return_index=True)
        last_pos = len(tags) - 1 - rev_first
        uidx = (rev_uniq ^ (rev_uniq >> shift)) % n_sets
        order = np.lexsort((last_pos, uidx))
        utag = rev_uniq[order]
        uset, counts = np.unique(uidx[order], return_counts=True)
        sets = self._sets
        assoc = self.assoc
        fast = 0
        overflow: list[int] = []
        pos = 0
        for s, c in zip(uset.tolist(), counts.tolist()):
            entry = sets[s]
            if c <= assoc and not entry:
                for tag in utag[pos:pos + c].tolist():
                    entry[tag] = None
                fast += 1
            else:
                overflow.append(s)
            pos += c
        if overflow:
            ov = set(overflow)
            idx = (tags ^ (tags >> shift)) % n_sets
            for tag, s in zip(tags.tolist(), idx.tolist()):
                if s not in ov:
                    continue
                entry = sets[s]
                if tag in entry:
                    del entry[tag]
                    entry[tag] = None
                else:
                    if len(entry) >= assoc:
                        del entry[next(iter(entry))]
                    entry[tag] = None
        return fast, len(overflow)

    def contains(self, addr: int) -> bool:
        """Non-mutating presence probe (no stats, no LRU update)."""
        n_sets = self.n_sets
        if not n_sets:
            return False
        line = int(addr) >> self._line_shift
        return line in self._sets[(line ^ (line >> self._index_shift)) % n_sets]

    def count_missing(self, addrs, limit: int | None = None) -> int:
        """How many of *addrs* are absent (bulk ``contains``; no stats,
        no LRU update).

        With *limit*, the scan stops as soon as the count exceeds it and
        returns the (partial, ``> limit``) count — for callers that only
        compare against a threshold, e.g. the MSHR throttle check, where
        a wide all-miss access would otherwise probe every address.
        """
        n_sets = self.n_sets
        if not n_sets:
            return len(addrs)
        line_shift = self._line_shift
        shift = self._index_shift
        sets = self._sets
        missing = 0
        if limit is not None:
            for addr in addrs:
                line = int(addr) >> line_shift
                if line not in sets[(line ^ (line >> shift)) % n_sets]:
                    missing += 1
                    if missing > limit:
                        return missing
            return missing
        for addr in addrs:
            line = int(addr) >> line_shift
            if line not in sets[(line ^ (line >> shift)) % n_sets]:
                missing += 1
        return missing

    def flush(self) -> None:
        """Invalidate every line (stats are preserved)."""
        for entry in self._sets:
            entry.clear()

    def resident_lines(self) -> int:
        """Number of lines currently allocated."""
        return sum(len(entry) for entry in self._sets)
