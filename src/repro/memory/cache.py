"""Set-associative cache with LRU replacement.

Used for the L1 data cache (per SM, sizeable and bypassable — the
Figure 2 sweep), the L2 slice, and the small constant cache.  The model
is a tag store only: hit/miss behaviour and statistics, no data.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss counters; ``weighted_*`` honour sampling weights."""

    accesses: float = 0.0
    hits: float = 0.0
    misses: float = 0.0

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over all accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate *other* into this instance."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses


class Cache:
    """A set-associative LRU tag store.

    A ``size_bytes`` of 0 models a bypassed cache: every access misses
    and nothing is allocated (the paper's "No L1" configuration).
    """

    def __init__(
        self, name: str, size_bytes: int, line_bytes: int = 128, assoc: int = 8
    ) -> None:
        if size_bytes < 0:
            raise ValueError("cache size must be non-negative")
        if line_bytes <= 0 or (line_bytes & (line_bytes - 1)):
            raise ValueError("line_bytes must be a positive power of two")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.assoc = max(1, assoc)
        n_lines = size_bytes // line_bytes
        self.n_sets = max(1, n_lines // self.assoc) if n_lines else 0
        # Each set is an LRU-ordered list of tags (most recent last).
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self._index_shift = max(1, self.n_sets.bit_length() - 1)
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        """Hashed set index (XOR-folded), as GPU caches use to avoid
        pathological conflicts on power-of-two strides — e.g. the
        4 KB-apart weight rows of a fully-connected layer."""
        return (line ^ (line >> self._index_shift)) % self.n_sets

    @property
    def enabled(self) -> bool:
        """False when the cache is bypassed (zero capacity)."""
        return self.n_sets > 0

    def access(self, addr: int, weight: float = 1.0, allocate: bool = True) -> bool:
        """Look up the line containing *addr*; returns True on hit.

        Args:
            addr: Byte address.
            weight: Sampling weight added to the counters.
            allocate: Allocate on miss (write-through no-allocate stores
                pass False).
        """
        self.stats.accesses += weight
        if not self.enabled:
            self.stats.misses += weight
            return False
        line = addr // self.line_bytes
        index = self._set_index(line)
        tag = line
        entry = self._sets[index]
        try:
            pos = entry.index(tag)
        except ValueError:
            self.stats.misses += weight
            if allocate:
                if len(entry) >= self.assoc:
                    entry.pop(0)
                entry.append(tag)
            return False
        # Move to MRU position.
        entry.append(entry.pop(pos))
        self.stats.hits += weight
        return True

    def contains(self, addr: int) -> bool:
        """Non-mutating presence probe (no stats, no LRU update)."""
        if not self.enabled:
            return False
        line = addr // self.line_bytes
        return line in self._sets[self._set_index(line)]

    def flush(self) -> None:
        """Invalidate every line (stats are preserved)."""
        for entry in self._sets:
            entry.clear()

    def resident_lines(self) -> int:
        """Number of lines currently allocated."""
        return sum(len(entry) for entry in self._sets)
