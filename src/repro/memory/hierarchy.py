"""The per-SM view of the memory hierarchy: L1D -> L2 slice -> DRAM.

The simulator drives one streaming multiprocessor (DESIGN.md section 6);
its hierarchy couples a private L1D (sizeable/bypassable, Figure 2) with
MSHRs, a slice of the shared L2 (capacity / num_SMs) and one DRAM
channel share.  Constant loads go through a small constant cache, and
shared-memory accesses complete at a fixed scratchpad latency.
"""

from __future__ import annotations

import numpy as np

from repro.memory.cache import Cache
from repro.memory.dram import Dram
from repro.memory.mshr import MshrFile

#: Transaction/line size in bytes, matching the coalescer granularity.
LINE_BYTES = 128


class MemoryHierarchy:
    """L1D + MSHR + L2 slice + DRAM for one simulated SM."""

    def __init__(
        self,
        l1_size: int,
        l2_size: int,
        mshr_entries: int = 32,
        l1_assoc: int = 4,
        l2_assoc: int = 16,
        lat_l1: int = 28,
        lat_l2: int = 270,
        lat_shared: int = 24,
        lat_const: int = 18,
        dram_latency: int = 460,
        dram_bytes_per_cycle: float = 8.0,
        const_size: int = 2048,
    ) -> None:
        self.l1 = Cache("L1D", l1_size, LINE_BYTES, l1_assoc)
        self.l2 = Cache("L2", l2_size, LINE_BYTES, l2_assoc)
        self.const_cache = Cache("CC", const_size, 64, 4)
        self.mshr = MshrFile(mshr_entries)
        self.dram = Dram(dram_latency, dram_bytes_per_cycle)
        self.lat_l1 = lat_l1
        self.lat_l2 = lat_l2
        self.lat_shared = lat_shared
        self.lat_const = lat_const
        # Aggregate traffic counters (weighted).
        self.load_transactions = 0.0
        self.store_transactions = 0.0
        self.shared_accesses = 0.0
        self.const_accesses = 0.0

    # ------------------------------------------------------------------
    def load(self, now: int, tx_addrs: np.ndarray, weight: float) -> int | None:
        """Service a coalesced global load; may throttle on MSHRs.

        Returns the cycle the load's data is ready, or ``None`` when the
        access was throttled (MSHRs exhausted) and must replay.  The
        MSHR check runs *before* any cache/DRAM side effects so a
        throttled access can replay without perturbing state or
        double-counting statistics.
        """
        mshr = self.mshr
        # Inline fast path for drain(): most loads arrive with nothing
        # releasable, and the full call pays heap peeks plus the lazy
        # ``_held`` update even then.  The guard replicates both — the
        # ``_held`` refresh must happen on every path, since
        # ``hold_until()`` defers it to the next drain.
        releases = mshr._releases
        if releases and releases[0][0] <= now:
            mshr.drain(now)
        else:
            mshr._held = now < mshr._hold_until
        l1 = self.l1
        # Throttle when the file cannot take this access.  An access
        # wider than the whole file (e.g. a 32-transaction FC load on a
        # 16-entry file) proceeds once the file is empty — hardware
        # splits it across MSHR waves — otherwise it could never issue.
        # An empty file never throttles, so the miss pre-count (a
        # non-mutating L1 probe per transaction) is skipped outright —
        # as it is when the whole access fits the free entries even if
        # every transaction missed; the limit makes a doomed probe of a
        # wide access stop at the threshold instead of scanning it all.
        in_use = len(mshr._inflight) + (1 if mshr._held else 0)
        if in_use > 0:
            free = mshr.capacity - in_use
            if len(tx_addrs) > free and l1.count_missing(tx_addrs, free) > free:
                mshr.throttle_events += weight
                return None
        ready = now + self.lat_l1
        # Probe (and fill) the L1 for the whole transaction vector at
        # once, then walk only the misses through L2/DRAM.  The L1 never
        # depends on L2/DRAM side effects, so splitting the interleaved
        # per-address walk into two passes leaves every tag store, MSHR
        # reservation and counter in the exact same state.
        missed = l1.access_many(tx_addrs, weight)
        if missed:
            l2_access = self.l2.access
            for addr in missed:
                # L1 miss: fill through L2 (or DRAM) holding an MSHR
                # entry.
                if l2_access(addr, weight):
                    completion = now + self.lat_l2
                else:
                    completion = self.dram.service(now, LINE_BYTES, weight)
                mshr.reserve(addr >> 7, completion, now, weight)  # // LINE_BYTES
                if completion > ready:
                    ready = completion
        misses = len(missed)
        if misses > self.mshr.capacity:
            # The access is wider than the MSHR file: the LSU replays it
            # in capacity-sized waves, serializing the extra groups.
            waves = -(-misses // self.mshr.capacity) - 1
            ready += waves * self.lat_l1
            self.mshr.hold_until(int(ready))
        self.load_transactions += len(tx_addrs) * weight
        return ready

    def store(self, now: int, tx_addrs: np.ndarray, weight: float) -> int:
        """Service a global store (write-through, no L1 allocate).

        Returns the cycle the store retires (stores never throttle)."""
        for addr in tx_addrs:
            addr = int(addr)
            self.l1.access(addr, weight, allocate=False)
            if not self.l2.access(addr, weight):
                self.dram.service(now, LINE_BYTES, weight)
        self.store_transactions += len(tx_addrs) * weight
        return now + 1

    def shared(self, now: int, weight: float) -> int:
        """Shared-memory access: fixed scratchpad latency."""
        self.shared_accesses += weight
        return now + self.lat_shared

    def const(self, now: int, weight: float) -> tuple[int, bool]:
        """Constant-bank access; returns (ready_cycle, was_miss)."""
        self.const_accesses += weight
        # The constant bank is tiny; model a single hot line per kernel.
        hit = self.const_cache.access(0, weight)
        if hit:
            return now + self.lat_const, False
        return now + self.lat_l2, True

    def warm_l2(self, tx_addrs) -> tuple[int, int]:
        """Vectorized zero-weight L2 pre-touch of *tx_addrs* (in order).

        The vector engine's batch front for shared-input warming: state-
        identical to ``l2.access(tx, weight=0.0)`` per transaction (see
        :meth:`repro.memory.cache.Cache.bulk_warm`), with the scalar
        replay kept as the fallback for sets whose eviction behaviour
        depends on the full access order.  MSHRs and DRAM are never
        involved in warming, so no throttle fallback is needed here.

        Returns ``(vectorized_sets, scalar_sets)``.
        """
        return self.l2.bulk_warm(tx_addrs)

    def mshr_pressure(self) -> float:
        """Fraction of MSHR entries in use (diagnostics/ablation)."""
        return self.mshr.in_use / self.mshr.capacity
