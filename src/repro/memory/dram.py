"""DRAM channel model: fixed latency plus a bandwidth-limited queue.

Each L2 miss occupies the channel for ``transaction_bytes / bandwidth``
cycles; requests arriving while the channel is busy queue behind it, so
bursty miss streams see growing latency — the first-order behaviour that
bounds memory-intensive layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Dram:
    """One DRAM channel serving cache-line fills.

    Attributes:
        latency: Fixed access latency in core cycles.
        bytes_per_cycle: Sustained channel bandwidth.
    """

    latency: int = 460
    bytes_per_cycle: float = 8.0
    _next_free: float = field(default=0.0, init=False)
    bytes_served: float = field(default=0.0, init=False)
    requests: float = field(default=0.0, init=False)

    def service(self, now: int, size_bytes: int = 128, weight: float = 1.0) -> int:
        """Schedule one fill starting at *now*; returns completion cycle."""
        start = max(float(now), self._next_free)
        occupancy = size_bytes / self.bytes_per_cycle
        self._next_free = start + occupancy
        self.bytes_served += size_bytes * weight
        self.requests += weight
        return int(start + occupancy + self.latency)

    @property
    def queue_delay(self) -> float:
        """Current backlog relative to cycle 0 (diagnostics)."""
        return self._next_free
