"""Global-memory access coalescing.

A warp's 32 lanes each present one address; the coalescer merges them
into the minimal set of 128-byte transactions, exactly as the CUDA
hardware does.  Broadcast accesses (all lanes on one filter tap)
collapse to a single transaction; a fully-strided fully-connected
access degenerates to 32 — the difference that separates the paper's
convolution and FC memory behaviour.
"""

from __future__ import annotations

import numpy as np

#: Memory transaction granularity in bytes (one cache sector/line).
TRANSACTION_BYTES = 128


def coalesce(addresses: np.ndarray, width_bytes: int = 4) -> np.ndarray:
    """Merge per-lane byte addresses into unique transaction addresses.

    Args:
        addresses: int64 array of active-lane byte addresses.
        width_bytes: Bytes each lane accesses (vector loads touch more
            than one transaction when they straddle a boundary).

    Returns:
        Sorted int64 array of unique transaction base addresses.
    """
    if addresses.size == 0:
        return addresses
    first = addresses // TRANSACTION_BYTES
    if width_bytes <= 1:
        return np.unique(first) * TRANSACTION_BYTES
    last = (addresses + width_bytes - 1) // TRANSACTION_BYTES
    if np.array_equal(first, last):
        return np.unique(first) * TRANSACTION_BYTES
    return np.unique(np.concatenate([first, last])) * TRANSACTION_BYTES
