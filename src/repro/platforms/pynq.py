"""Analytic model of the Xilinx PynQ-Z1 FPGA platform (Table IV).

The paper converts the OpenCL kernels to RTL with Vivado HLS and runs
them on a PynQ-Z1 (Zynq Z7020: dual Cortex-A9 at 650 MHz, 512 MB DDR3,
13,300 logic slices, 630 KB BRAM).  Because the on-chip memory is far
smaller than any CNN layer, each layer is partitioned into several
sub-kernels executed over multiple iterations, and code loading is slow
(Section IV-B.3) — those two effects, plus a DSP-limited MAC pipeline at
the fabric clock, are the terms of this model.

The model exists for Figure 6: it must reproduce the *relationship* the
paper measures — TX1 finishes CifarNet/SqueezeNet 1.7x/1.8x faster but
draws 2.28x/3.2x more peak power, leaving PynQ 1.34x/1.74x more energy
efficient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import NetworkGraph

KB = 1024


@dataclass(frozen=True)
class PynqPlatform:
    """Table IV: the FPGA platform used for evaluation."""

    name: str = "PynQ-Z1"
    processor: str = "Dual-core ARM Cortex-A9 @ 650 MHz"
    memory: str = "512MB DDR3"
    storage_gb: int = 32
    programmable_logic: str = "Xilinx Zynq Z7020"
    logic_slices: int = 13300
    bram_bytes: int = 630 * KB
    dsp_slices: int = 220
    fabric_clock_mhz: float = 100.0
    ddr_gb_per_s: float = 0.6
    #: Board power: FPGA boards draw little; the fabric pipeline is
    #: dedicated per network, so dynamic power is low and flat.
    static_watts: float = 2.2
    dynamic_watts_max: float = 1.0
    #: Per-sub-kernel code/bitstream load overhead (the "slower code
    #: loading time" of Section IV-B.3), in seconds.
    code_load_s: float = 0.0005


PYNQ_Z1 = PynqPlatform()


@dataclass(frozen=True)
class FpgaLayerEstimate:
    """Per-layer execution estimate on the FPGA."""

    name: str
    sub_kernels: int
    compute_s: float
    transfer_s: float
    load_s: float

    @property
    def total_s(self) -> float:
        """Total layer time."""
        return self.compute_s + self.transfer_s + self.load_s


@dataclass(frozen=True)
class FpgaRunResult:
    """Whole-network execution estimate on the FPGA."""

    network: str
    layers: tuple[FpgaLayerEstimate, ...]
    time_s: float
    peak_watts: float

    @property
    def energy_j(self) -> float:
        """Energy as the paper computes it: peak power x execution time."""
        return self.peak_watts * self.time_s


class PynqZ1Model:
    """Analytic performance/power model of HLS-generated layer pipelines."""

    def __init__(self, platform: PynqPlatform = PYNQ_Z1):
        self.platform = platform

    def estimate_layer(self, graph: NetworkGraph, node) -> FpgaLayerEstimate:
        """Estimate one layer: partitioning, compute, transfer, loading."""
        p = self.platform
        in_shapes = graph.in_shapes(node)
        layer = node.layer
        macs = layer.macs(in_shapes)
        weight_bytes = layer.weight_bytes(in_shapes)
        in_bytes = 4 * int(sum(np.prod(s) for s in in_shapes))
        out_bytes = layer.activation_bytes(in_shapes)
        footprint = weight_bytes + in_bytes + out_bytes
        # Layers that exceed BRAM are split into sub-kernels run over
        # multiple iterations (Section III-D / Observation 9).  The HLS
        # pipelines tile by output rows, so each sub-kernel re-reads its
        # input slice plus a halo: the input refetch factor grows with
        # the split but saturates (halo rows bound it), while weights and
        # the output stream exactly once.
        sub_kernels = max(1, -(-footprint // p.bram_bytes))
        # Weightless layers (pooling, normalization) tile with a trivial
        # halo and never re-read their input.
        refetch = min(sub_kernels, 3) if weight_bytes else 1
        macs_per_cycle = p.dsp_slices
        ops = macs if macs else in_bytes // 4
        compute_s = ops / (macs_per_cycle * p.fabric_clock_mhz * 1e6)
        transfer_bytes = in_bytes * refetch + weight_bytes + out_bytes
        transfer_s = transfer_bytes / (p.ddr_gb_per_s * 1e9)
        load_s = p.code_load_s * sub_kernels
        return FpgaLayerEstimate(
            name=node.name,
            sub_kernels=sub_kernels,
            compute_s=compute_s,
            transfer_s=transfer_s,
            load_s=load_s,
        )

    def run_network(self, graph: NetworkGraph) -> FpgaRunResult:
        """Estimate a full-network inference on the PynQ-Z1."""
        from repro.core.layers.defs import Concat

        # Concat layers cost nothing on the FPGA: the expand pipelines
        # write straight into the concatenated buffer.
        layers = tuple(
            self.estimate_layer(graph, node)
            for node in graph.nodes
            if not isinstance(node.layer, Concat)
        )
        time_s = sum(layer.total_s for layer in layers)
        # Dedicated pipelines keep utilization (and dynamic power) modest
        # and roughly proportional to how much of the fabric the busiest
        # layer engages.
        busiest = max((l.compute_s / l.total_s if l.total_s else 0.0) for l in layers)
        peak = self.platform.static_watts + self.platform.dynamic_watts_max * busiest
        return FpgaRunResult(
            network=graph.name, layers=layers, time_s=time_s, peak_watts=peak
        )
