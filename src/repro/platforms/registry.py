"""The platform registry (Table II GPUs plus accelerator backends).

GPU parameters follow the paper's Table II plus the public
specifications of each part:

* **GK210** (server, Kepler): one die of a Tesla K80 — 13 SMX of 192
  cores, 24 GB GDDR5, 128 KB shared/L1 per block group.
* **Tegra X1** (mobile, Maxwell): 2 SMM of 128 cores, 4 GB LPDDR4,
  48 KB L1/texture, 256 KB L2.
* **GP102** (simulator, Pascal): 28 SMs of 128 cores (the development
  GPGPU-Sim Pascal model the paper uses), 11 GB GDDR5X, 64 KB default
  L1D (the Figure 2 sweep rescales it), 96 KB shared memory.

The registry itself is capability-based: every entry implements the
:class:`~repro.platforms.base.Platform` protocol (``name``, ``kind``,
``memory_budget()``, ``compute_budget()``, ``make_config()``), so GPUs,
FPGAs and NPUs list, resolve and sweep through one surface:

* :func:`platform` — name -> Platform (the capability object);
* :func:`make_config` — name -> frozen execution config, with
  per-platform overrides (``l1_kb`` for the Figure 2 sweep);
* :func:`list_platforms` — all names, optionally filtered by kind.

The pre-protocol lookup functions — :func:`get_platform` and
:func:`resolve_platform` — remain as :class:`DeprecationWarning` shims
for one release; in-repo callers are migrated and the test suite
promotes any repro-originated use to an error.
"""

from __future__ import annotations

import warnings

from repro.gpu.config import GpuConfig
from repro.platforms.accel import (
    PYNQ_Z1_MAPPED,
    S2NPU,
    ZCU102,
    AcceleratorConfig,
    AcceleratorPlatform,
)
from repro.platforms.base import KINDS, GpuPlatform, Platform

KB = 1024
MB = 1024 * 1024

#: NVIDIA GK210 (one die of the Tesla K80 board the paper profiles).
GK210 = GpuConfig(
    name="GK210",
    num_sms=13,
    cores_per_sm=192,
    clock_ghz=0.875,
    registers_per_sm=65536 * 2,  # Kepler GK210 doubles the SMX register file
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    shared_mem_per_sm=112 * KB,
    l1_size=48 * KB,
    l2_size=1536 * KB,
    dram_gb_per_s=240.0,
    mshr_entries=44,  # Kepler's LSU tracks up to 44 in-flight loads per SMX
    tdp_watts=150.0,
    idle_watts=25.0,
)

#: NVIDIA Tegra X1 (Jetson TX1 board).
TX1 = GpuConfig(
    name="TX1",
    num_sms=2,
    cores_per_sm=128,
    clock_ghz=0.998,
    registers_per_sm=32768,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=48 * KB,
    l1_size=24 * KB,
    l2_size=256 * KB,
    dram_gb_per_s=25.6,
    mshr_entries=16,
    tdp_watts=15.0,
    idle_watts=2.0,
)

#: Pascal GP102 as modelled by the development branch of GPGPU-Sim.
GP102 = GpuConfig(
    name="GP102",
    num_sms=28,
    cores_per_sm=128,
    clock_ghz=1.48,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * KB,
    l1_size=64 * KB,  # Pascal default; Figure 2 sweeps 0/64K/128K/256K
    l2_size=3 * MB,
    dram_gb_per_s=484.0,
    mshr_entries=32,
    tdp_watts=250.0,
    idle_watts=50.0,
)

_REGISTRY: dict[str, Platform] = {
    "gk210": GpuPlatform(GK210),
    "tx1": GpuPlatform(TX1),
    "gp102": GpuPlatform(GP102),
    "zcu102": AcceleratorPlatform(ZCU102),
    "s2npu": AcceleratorPlatform(S2NPU),
    "pynqz1": AcceleratorPlatform(PYNQ_Z1_MAPPED),
}

#: Names that can never be unregistered.
_BUILTIN = frozenset(_REGISTRY)


def list_platforms(kind: str | None = None) -> tuple[str, ...]:
    """Names of the registered platforms, optionally one kind only."""
    if kind is None:
        return tuple(_REGISTRY)
    if kind not in KINDS:
        raise ValueError(f"unknown platform kind {kind!r}; kinds: {', '.join(KINDS)}")
    return tuple(
        name for name, entry in _REGISTRY.items() if entry.kind == kind
    )


def platform(name: str) -> Platform:
    """Look up a platform's capability object by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def make_config(name: str, **overrides):
    """The execution config of a platform, with optional overrides.

    The single entry point the run/serve/campaign layers resolve
    platforms through: ``make_config("gp102")`` is the canonical
    :data:`GP102` instance, ``make_config("gp102", l1_kb=128)`` the
    Figure 2 sweep's derived config, ``make_config("s2npu")`` an
    :class:`~repro.platforms.accel.AcceleratorConfig` the tiling mapper
    executes.  ``l1_kb=None`` keeps the platform default, matching the
    campaign planner's axis semantics.
    """
    return platform(name).make_config(**overrides)


def register_platform(entry, *, replace: bool = False) -> Platform:
    """Register a platform under its (lower-cased) name.

    Accepts a :class:`~repro.platforms.base.Platform` implementation,
    or a raw :class:`GpuConfig`/:class:`AcceleratorConfig` which is
    wrapped in the matching adapter — so downstream code (the serving
    fleet builder, tests, user studies) keeps registering plain configs.
    Re-registering an existing name requires ``replace=True`` so the
    paper platforms can't be shadowed silently.
    """
    if isinstance(entry, GpuConfig):
        entry = GpuPlatform(entry)
    elif isinstance(entry, AcceleratorConfig):
        entry = AcceleratorPlatform(entry)
    key = entry.name.lower()
    if not replace and key in _REGISTRY:
        raise ValueError(f"platform {entry.name!r} is already registered")
    _REGISTRY[key] = entry
    return entry


def unregister_platform(name: str) -> None:
    """Remove a registered platform (for test cleanup); the built-in
    platforms cannot be removed."""
    key = name.lower()
    if key in _BUILTIN:
        raise ValueError(f"cannot unregister built-in platform {name!r}")
    _REGISTRY.pop(key, None)


# ----------------------------------------------------------------------
# deprecated pre-protocol surface (delete next release)
# ----------------------------------------------------------------------
def get_platform(name: str):
    """Deprecated: use :func:`make_config` (or :func:`platform`)."""
    warnings.warn(
        "get_platform() is deprecated; use make_config(name) for the "
        "execution config or platform(name) for the capability object",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_config(name)


def resolve_platform(name: str, l1_kb: int | None = None):
    """Deprecated: use ``make_config(name, l1_kb=...)``."""
    warnings.warn(
        "resolve_platform() is deprecated; use make_config(name, l1_kb=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_config(name, l1_kb=l1_kb)
