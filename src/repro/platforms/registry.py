"""GPU platform configurations (the paper's Table II).

Parameters follow the table plus the public specifications of each
part:

* **GK210** (server, Kepler): one die of a Tesla K80 — 13 SMX of 192
  cores, 24 GB GDDR5, 128 KB shared/L1 per block group.
* **Tegra X1** (mobile, Maxwell): 2 SMM of 128 cores, 4 GB LPDDR4,
  48 KB L1/texture, 256 KB L2.
* **GP102** (simulator, Pascal): 28 SMs of 128 cores (the development
  GPGPU-Sim Pascal model the paper uses), 11 GB GDDR5X, 64 KB default
  L1D (the Figure 2 sweep rescales it), 96 KB shared memory.
"""

from __future__ import annotations

from repro.gpu.config import GpuConfig

KB = 1024
MB = 1024 * 1024

#: NVIDIA GK210 (one die of the Tesla K80 board the paper profiles).
GK210 = GpuConfig(
    name="GK210",
    num_sms=13,
    cores_per_sm=192,
    clock_ghz=0.875,
    registers_per_sm=65536 * 2,  # Kepler GK210 doubles the SMX register file
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    shared_mem_per_sm=112 * KB,
    l1_size=48 * KB,
    l2_size=1536 * KB,
    dram_gb_per_s=240.0,
    mshr_entries=44,  # Kepler's LSU tracks up to 44 in-flight loads per SMX
    tdp_watts=150.0,
    idle_watts=25.0,
)

#: NVIDIA Tegra X1 (Jetson TX1 board).
TX1 = GpuConfig(
    name="TX1",
    num_sms=2,
    cores_per_sm=128,
    clock_ghz=0.998,
    registers_per_sm=32768,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=48 * KB,
    l1_size=24 * KB,
    l2_size=256 * KB,
    dram_gb_per_s=25.6,
    mshr_entries=16,
    tdp_watts=15.0,
    idle_watts=2.0,
)

#: Pascal GP102 as modelled by the development branch of GPGPU-Sim.
GP102 = GpuConfig(
    name="GP102",
    num_sms=28,
    cores_per_sm=128,
    clock_ghz=1.48,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * KB,
    l1_size=64 * KB,  # Pascal default; Figure 2 sweeps 0/64K/128K/256K
    l2_size=3 * MB,
    dram_gb_per_s=484.0,
    mshr_entries=32,
    tdp_watts=250.0,
    idle_watts=50.0,
)

_PLATFORMS = {"gk210": GK210, "tx1": TX1, "gp102": GP102}


def list_platforms() -> tuple[str, ...]:
    """Names of the registered GPU platforms."""
    return tuple(_PLATFORMS)


def register_platform(config: GpuConfig, *, replace: bool = False) -> GpuConfig:
    """Register *config* under its (lower-cased) name.

    Lets downstream code — the serving fleet builder, tests, user
    studies — add device models next to the Table II trio without
    editing this module.  Re-registering an existing name requires
    ``replace=True`` so the paper platforms can't be shadowed silently.
    """
    key = config.name.lower()
    if not replace and key in _PLATFORMS:
        raise ValueError(f"platform {config.name!r} is already registered")
    _PLATFORMS[key] = config
    return config


def unregister_platform(name: str) -> None:
    """Remove a registered platform (for test cleanup); the built-in
    Table II platforms cannot be removed."""
    key = name.lower()
    if key in ("gk210", "tx1", "gp102"):
        raise ValueError(f"cannot unregister built-in platform {name!r}")
    _PLATFORMS.pop(key, None)


def get_platform(name: str) -> GpuConfig:
    """Look up a GPU platform by (case-insensitive) name."""
    try:
        return _PLATFORMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {', '.join(_PLATFORMS)}"
        ) from None


def resolve_platform(name: str, l1_kb: int | None = None) -> GpuConfig:
    """Look up a platform, optionally overriding its L1D size.

    The campaign planner's single entry point into the registry:
    ``l1_kb=None`` keeps the platform's default L1D, any other value
    (in KB; 0 bypasses the L1) produces a derived config the same way
    the Figure 2 sweep does.
    """
    config = get_platform(name)
    if l1_kb is None:
        return config
    if l1_kb < 0:
        raise ValueError(f"l1_kb must be >= 0, got {l1_kb}")
    return config.with_l1(l1_kb * 1024)
