"""The capability-based ``Platform`` protocol.

The registry used to be a flat ``name -> GpuConfig`` dict, which made
"platform" synonymous with "CUDA GPU" and left the PynQ model (and any
future FPGA/NPU backend) outside the registry, invisible to serve
fleets and campaign sweeps.  This module defines the device-kind-
agnostic surface every platform now implements:

* ``name`` / ``kind`` — identity plus the device class (``gpu``,
  ``fpga`` or ``npu``), so callers can filter
  (``list_platforms(kind="fpga")``) without isinstance checks;
* ``memory_budget()`` — the on-chip working memory one compute tile
  (SM, BRAM region, PE) can hold, how many tiles there are, and the
  DRAM bandwidth feeding them — exactly what the tiling mapper
  (:mod:`repro.mapping`) needs to plan layer splits;
* ``compute_budget()`` — MACs per cycle per tile and the clock;
* ``make_config(**overrides)`` — the frozen execution config a
  :class:`~repro.runs.spec.RunSpec` carries (a
  :class:`~repro.gpu.config.GpuConfig` for GPUs, an
  :class:`~repro.platforms.accel.AcceleratorConfig` otherwise).
  Calling it with no overrides returns the platform's canonical config
  *instance*, so identity-based caching keeps working.

:class:`GpuPlatform` adapts the Table II :class:`GpuConfig` constants
onto the protocol; accelerator platforms live in
:mod:`repro.platforms.accel`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

from repro.gpu.config import GpuConfig

#: Device classes a platform may declare.
KINDS = ("gpu", "fpga", "npu")


@dataclass(frozen=True)
class MemoryBudget:
    """On-chip memory capability of one platform.

    ``per_tile_bytes`` is the working memory a single compute tile can
    hold (an SM's L1/shared storage, a BRAM region, a PE's SRAM); the
    tiling mapper plans against it directly.
    """

    per_tile_bytes: int
    tiles: int
    dram_gb_per_s: float

    @property
    def total_bytes(self) -> int:
        """Aggregate on-chip working memory across all tiles."""
        return self.per_tile_bytes * self.tiles


@dataclass(frozen=True)
class ComputeBudget:
    """Arithmetic capability of one platform."""

    macs_per_cycle_per_tile: int
    tiles: int
    clock_ghz: float

    @property
    def peak_macs_per_cycle(self) -> int:
        """Chip-wide MACs per cycle."""
        return self.macs_per_cycle_per_tile * self.tiles

    @property
    def peak_gmacs_per_s(self) -> float:
        """Chip-wide peak throughput in GMAC/s."""
        return self.peak_macs_per_cycle * self.clock_ghz


@runtime_checkable
class Platform(Protocol):
    """What every registered platform exposes, regardless of kind."""

    @property
    def name(self) -> str: ...

    @property
    def kind(self) -> str: ...

    def memory_budget(self) -> MemoryBudget: ...

    def compute_budget(self) -> ComputeBudget: ...

    def make_config(self, **overrides): ...


@dataclass(frozen=True)
class GpuPlatform:
    """A Table II GPU adapted onto the :class:`Platform` protocol.

    The budget mapping treats one SM as one tile: its L1D is the
    per-tile working memory and its CUDA cores are one MAC each per
    cycle.  ``make_config`` understands the campaign planner's
    ``l1_kb`` override (the Figure 2 sweep) plus any
    :class:`GpuConfig` field by name.
    """

    config: GpuConfig

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def kind(self) -> str:
        return "gpu"

    def memory_budget(self) -> MemoryBudget:
        return MemoryBudget(
            per_tile_bytes=self.config.l1_size + self.config.shared_mem_per_sm,
            tiles=self.config.num_sms,
            dram_gb_per_s=self.config.dram_gb_per_s,
        )

    def compute_budget(self) -> ComputeBudget:
        return ComputeBudget(
            macs_per_cycle_per_tile=self.config.cores_per_sm,
            tiles=self.config.num_sms,
            clock_ghz=self.config.clock_ghz,
        )

    def make_config(self, *, l1_kb: int | None = None, **overrides) -> GpuConfig:
        config = self.config
        if l1_kb is not None:
            if l1_kb < 0:
                raise ValueError(f"l1_kb must be >= 0, got {l1_kb}")
            config = config.with_l1(l1_kb * 1024)
        if overrides:
            config = replace(config, **overrides)
        return config
