"""Tile-based accelerator platforms (FPGA- and NPU-class devices).

The paper's premise is benchmarking DNNs across *various* accelerators;
these configs model the two non-GPU classes the mapper
(:mod:`repro.mapping`) targets:

* **ZCU102** — a Zynq UltraScale+ evaluation board standing in for the
  FPGA toolflow targets surveyed by Venieris et al.: a few large BRAM
  regions, wide DSP MAC arrays at a modest fabric clock, DDR4 behind
  them.
* **S2NPU** — a SpiNNaker2-style many-core NPU: many small PEs, each
  with its own SRAM and a narrow MAC array, near-threshold energy per
  operation, modest LPDDR bandwidth.
* **PynQ-Z1 (mapped)** — the Table IV board re-expressed as a mappable
  platform, so the same tiling mapper drives the paper's FPGA too (the
  analytic :class:`~repro.platforms.pynq.PynqZ1Model` remains the
  Figure 6 reference model).

An :class:`AcceleratorConfig` plays the role :class:`GpuConfig` plays
for GPUs: the frozen value a :class:`~repro.runs.spec.RunSpec` carries,
hashed field-by-field into the content-addressed store key.  The
``l1_size``/``num_sms`` properties keep the config duck-compatible with
the spec/profile plumbing that predates heterogeneous platforms
(per-tile memory is the accelerator's "L1"; a tile is its "SM").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.platforms.base import ComputeBudget, MemoryBudget

KB = 1024

#: Version tag of the tiling mapper algorithm.  It is a field of every
#: AcceleratorConfig, so run keys (which hash the config) invalidate
#: automatically when the mapping algorithm changes — the accelerator
#: analogue of folding ``engine_version()`` into GPU keys.
MAPPER_VERSION = "tile-1"


@dataclass(frozen=True)
class AcceleratorConfig:
    """One tile-based accelerator's architecture parameters."""

    name: str
    #: Device class: "fpga" or "npu".
    kind: str
    #: Parallel compute tiles (BRAM regions / processing elements).
    tiles: int
    #: On-chip working memory per tile in bytes (BRAM / SRAM).
    tile_memory_bytes: int
    #: MAC array shape per tile: rows map to output channels,
    #: columns to the input-dot-product dimension.
    mac_rows: int
    mac_cols: int
    clock_ghz: float
    dram_gb_per_s: float
    tdp_watts: float
    idle_watts: float
    #: Dynamic energy per MAC operation, in picojoules.
    energy_per_mac_pj: float
    #: Dynamic energy per DRAM byte moved, in picojoules.
    energy_per_dram_byte_pj: float
    #: Per-layer-launch control/configuration overhead in cycles.
    launch_overhead_cycles: int = 2000
    #: Whether DMA overlaps compute (double buffering).
    dma_overlap: bool = True
    #: Mapping-algorithm version (folds into run keys).
    mapper_version: str = MAPPER_VERSION

    # -- duck-compatibility with GpuConfig-shaped plumbing -------------
    @property
    def l1_size(self) -> int:
        """Per-tile memory (what ``l1_kb`` sweeps override)."""
        return self.tile_memory_bytes

    @property
    def num_sms(self) -> int:
        """Tile count (what wave math divides blocks across)."""
        return self.tiles

    @property
    def macs_per_cycle_per_tile(self) -> int:
        return self.mac_rows * self.mac_cols

    def with_l1(self, nbytes: int) -> "AcceleratorConfig":
        """A copy with a different per-tile memory size."""
        return replace(self, tile_memory_bytes=nbytes)


@dataclass(frozen=True)
class AcceleratorPlatform:
    """An :class:`AcceleratorConfig` adapted onto the Platform protocol."""

    config: AcceleratorConfig

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def kind(self) -> str:
        return self.config.kind

    def memory_budget(self) -> MemoryBudget:
        return MemoryBudget(
            per_tile_bytes=self.config.tile_memory_bytes,
            tiles=self.config.tiles,
            dram_gb_per_s=self.config.dram_gb_per_s,
        )

    def compute_budget(self) -> ComputeBudget:
        return ComputeBudget(
            macs_per_cycle_per_tile=self.config.macs_per_cycle_per_tile,
            tiles=self.config.tiles,
            clock_ghz=self.config.clock_ghz,
        )

    def make_config(
        self, *, l1_kb: int | None = None, **overrides
    ) -> AcceleratorConfig:
        config = self.config
        if l1_kb is not None:
            if l1_kb < 0:
                raise ValueError(f"l1_kb must be >= 0, got {l1_kb}")
            config = config.with_l1(l1_kb * 1024)
        if overrides:
            config = replace(config, **overrides)
        return config


#: Zynq UltraScale+ ZCU102 class FPGA: 8 BRAM-backed compute regions of
#: 512 KB each, 32x9 DSP MAC arrays (2304 of the ZU9EG's 2520 DSPs) at
#: a 250 MHz fabric clock, 64-bit DDR4 behind them.
ZCU102 = AcceleratorConfig(
    name="ZCU102",
    kind="fpga",
    tiles=8,
    tile_memory_bytes=512 * KB,
    mac_rows=32,
    mac_cols=9,
    clock_ghz=0.25,
    dram_gb_per_s=19.2,
    tdp_watts=25.0,
    idle_watts=8.0,
    energy_per_mac_pj=6.0,
    energy_per_dram_byte_pj=160.0,
    launch_overhead_cycles=5000,
)

#: SpiNNaker2-style NPU: 144 processing elements with 128 KB SRAM each
#: and a 16x4 MAC array per PE, near-threshold energy per operation,
#: LPDDR4 shared across the mesh.
S2NPU = AcceleratorConfig(
    name="S2NPU",
    kind="npu",
    tiles=144,
    tile_memory_bytes=128 * KB,
    mac_rows=16,
    mac_cols=4,
    clock_ghz=0.2,
    dram_gb_per_s=8.0,
    tdp_watts=7.0,
    idle_watts=1.2,
    energy_per_mac_pj=1.2,
    energy_per_dram_byte_pj=120.0,
    launch_overhead_cycles=2000,
)

#: The Table IV PynQ-Z1 as a mappable platform: one 630 KB BRAM region
#: feeding a 20x11 array (220 DSP slices) at the 100 MHz fabric clock.
#: The launch overhead models Section IV-B.3's slow code loading
#: (0.5 ms per layer at 0.1 GHz).
PYNQ_Z1_MAPPED = AcceleratorConfig(
    name="PynqZ1",
    kind="fpga",
    tiles=1,
    tile_memory_bytes=630 * KB,
    mac_rows=20,
    mac_cols=11,
    clock_ghz=0.1,
    dram_gb_per_s=0.6,
    tdp_watts=3.2,
    idle_watts=2.2,
    energy_per_mac_pj=8.0,
    energy_per_dram_byte_pj=200.0,
    launch_overhead_cycles=50_000,
)
