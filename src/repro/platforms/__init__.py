"""Evaluation platforms (Tables II and IV, plus accelerator backends).

GPU configurations for the paper's three CUDA targets — the Pascal
GP102 GPGPU-Sim model, the Kepler GK210 server GPU and the Maxwell
Tegra X1 mobile GPU — the analytic Xilinx PynQ-Z1 FPGA model used for
the OpenCL energy comparison (Figure 6), and the tile-based accelerator
platforms (ZCU102 FPGA-class, S2NPU SpiNNaker2-class) the
:mod:`repro.mapping` compiler targets.

Every registered platform implements the capability-based
:class:`~repro.platforms.base.Platform` protocol; resolve names with
:func:`make_config`/:func:`platform` and enumerate with
:func:`list_platforms` (optionally by ``kind``).  ``get_platform`` and
``resolve_platform`` are deprecated shims.
"""

from repro.platforms.accel import (
    PYNQ_Z1_MAPPED,
    S2NPU,
    ZCU102,
    AcceleratorConfig,
    AcceleratorPlatform,
)
from repro.platforms.base import (
    KINDS,
    ComputeBudget,
    GpuPlatform,
    MemoryBudget,
    Platform,
)
from repro.platforms.pynq import PYNQ_Z1, PynqZ1Model
from repro.platforms.registry import (
    GK210,
    GP102,
    TX1,
    get_platform,
    list_platforms,
    make_config,
    platform,
    register_platform,
    resolve_platform,
    unregister_platform,
)

__all__ = [
    "AcceleratorConfig",
    "AcceleratorPlatform",
    "ComputeBudget",
    "GK210",
    "GP102",
    "GpuPlatform",
    "KINDS",
    "MemoryBudget",
    "PYNQ_Z1",
    "PYNQ_Z1_MAPPED",
    "Platform",
    "PynqZ1Model",
    "S2NPU",
    "TX1",
    "ZCU102",
    "get_platform",
    "list_platforms",
    "make_config",
    "platform",
    "register_platform",
    "resolve_platform",
    "unregister_platform",
]
