"""Evaluation platforms (Tables II and IV).

GPU configurations for the paper's three CUDA targets — the Pascal
GP102 GPGPU-Sim model, the Kepler GK210 server GPU and the Maxwell
Tegra X1 mobile GPU — plus the analytic Xilinx PynQ-Z1 FPGA model used
for the OpenCL energy comparison (Figure 6).
"""

from repro.platforms.registry import (
    GK210,
    GP102,
    TX1,
    get_platform,
    list_platforms,
    register_platform,
    resolve_platform,
    unregister_platform,
)
from repro.platforms.pynq import PYNQ_Z1, PynqZ1Model

__all__ = [
    "GK210",
    "GP102",
    "PYNQ_Z1",
    "PynqZ1Model",
    "TX1",
    "get_platform",
    "list_platforms",
    "register_platform",
    "resolve_platform",
    "unregister_platform",
]
