"""Compile-time tiling/partitioning mapper for tile-based accelerators.

Takes a network's layer graph plus a device's memory/compute budget
(:class:`~repro.platforms.accel.AcceleratorConfig`) and produces a
tiled execution plan — the SpiNNaker2-style fallback ladder over
output channels, activation rows and input channels — which
:func:`run_mapped_network` then times on the device's analytic model.
"""

from repro.mapping.execute import layer_kernel, run_mapped_network
from repro.mapping.mapper import MappingError, map_layer, map_network
from repro.mapping.plan import LayerPlan, NetworkPlan, Tile, TileRange

__all__ = [
    "LayerPlan",
    "MappingError",
    "NetworkPlan",
    "Tile",
    "TileRange",
    "layer_kernel",
    "map_layer",
    "map_network",
    "run_mapped_network",
]
