"""Execute a tiled plan on an accelerator's analytic timing model.

One layer plan becomes one stored "kernel": its tiles are scheduled in
waves across the device's compute tiles (exactly how GPU thread blocks
wave across SMs), each tile costing the max (or sum, without DMA
overlap) of its MAC-array compute cycles and its DMA cycles at the
per-tile share of DRAM bandwidth.  A per-layer launch overhead models
control/configuration cost (code loading on the PynQ, NoC setup on the
SpiNNaker2 mesh).

The result is a :class:`~repro.runs.store.StoredNetworkResult`: the
same duck type the GPU simulator's runs store produces, so the serving
latency profiles, power meters, campaign QoR rows and report renderers
consume accelerator runs unchanged.  The stats are populated so that
:func:`repro.serve.profiles.profile_from_result` reproduces
``total_time_ms`` exactly at batch 1 (``wave_cycles`` x wave count plus
launch overhead), mirroring the GPU contract.
"""

from __future__ import annotations

from repro.core.graph import NetworkGraph
from repro.gpu.config import SimOptions
from repro.gpu.occupancy import Occupancy
from repro.mapping.mapper import map_network
from repro.mapping.plan import LayerPlan
from repro.platforms.accel import AcceleratorConfig
from repro.profiling.stats import KernelStats
from repro.runs.store import (
    StoredKernelInfo,
    StoredKernelResult,
    StoredNetworkResult,
)


def _ceil(a: int, b: int) -> int:
    return -(-a // b)


def layer_kernel(
    plan: LayerPlan, config: AcceleratorConfig
) -> StoredKernelResult:
    """Time one layer plan on *config* as a stored kernel result."""
    n_tiles = plan.n_tiles
    concurrency = min(n_tiles, config.tiles)
    # concurrent tiles share DRAM bandwidth equally
    bw_per_tile = config.dram_gb_per_s / concurrency
    wave_cycles = 0.0
    for tile in plan.tiles:
        dma = tile.transfer_bytes * config.clock_ghz / bw_per_tile
        if config.dma_overlap:
            cost = max(float(tile.compute_cycles), dma)
        else:
            cost = tile.compute_cycles + dma
        wave_cycles = max(wave_cycles, cost)
    waves = _ceil(n_tiles, config.tiles)

    stats = KernelStats()
    stats.wave_cycles = wave_cycles
    stats.waves = waves
    stats.cycles = wave_cycles * waves + config.launch_overhead_cycles
    stats.issued = float(plan.total_macs)
    stats.dram_bytes = float(plan.total_transfer_bytes)
    stats.active_sms = concurrency

    info = StoredKernelInfo(
        name=f"{plan.strategy}:{plan.node_name}",
        node_name=plan.node_name,
        category=plan.category,
        sig=plan.signature(),
        total_blocks=n_tiles,
    )
    occupancy = Occupancy(
        blocks=1,
        warps=1,
        threads=1,
        limiter="tile-memory",
        allocated_register_bytes=0,
    )
    return StoredKernelResult(
        kernel=info,
        stats=stats,
        occupancy=occupancy,
        sample_factor=1.0,
        block_factor=float(n_tiles),
    )


def run_mapped_network(
    network: str | NetworkGraph,
    config: AcceleratorConfig,
    options: SimOptions | None = None,
) -> StoredNetworkResult:
    """Map *network* onto *config* and time the tiled plan.

    ``options`` only rides along for result bookkeeping (the mapper is
    exact, not sampled); pass-through layers contribute no kernels.
    """
    plan = map_network(network, config)
    result = StoredNetworkResult(
        network=plan.network,
        config=config,
        options=options if options is not None else SimOptions(),
    )
    signatures: set[str] = set()
    for layer_plan in plan.layers:
        if not layer_plan.tiles:
            continue
        kernel = layer_kernel(layer_plan, config)
        signatures.add(kernel.kernel.sig)
        result.kernels.append(kernel)
    result.unique_kernels = len(signatures)
    return result
