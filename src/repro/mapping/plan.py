"""Tiled execution plans (what the mapper emits, what the executor runs).

A plan is a pure description: which slice of a layer's output each tile
computes, what that slice costs in on-chip memory (the *footprint* the
device budget constrains), arithmetic, and DRAM traffic.  The mapper
(:mod:`repro.mapping.mapper`) guarantees every tile's footprint fits the
device's per-tile memory — budget feasibility is a construction
invariant, property-tested in ``tests/test_mapping.py`` — and that the
tiles' output ranges partition the full layer output exactly (the
*stitching* invariant).

The plan layer is deliberately free of device-time modelling: cycles
per tile are computed by the mapper from the MAC-array shape, and DMA /
wave scheduling happens in :mod:`repro.mapping.execute`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class TileRange:
    """A half-open ``[start, stop)`` index range along one split axis."""

    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class Tile:
    """One unit of work placed on one compute tile of the device.

    ``channels`` and ``rows`` locate the tile's slice of the layer
    output on the plan's coverage grid (see
    :attr:`LayerPlan.coverage`); ``in_group`` identifies the
    input-channel group when the mapper fell back to input-channel
    splitting (partial sums accumulated across groups).
    """

    index: int
    channels: TileRange
    rows: TileRange
    in_group: int
    n_in_groups: int
    #: On-chip bytes the tile needs resident (inputs + weights + outputs).
    footprint_bytes: int
    #: Multiply-accumulates the tile performs.
    macs: int
    #: DRAM bytes moved for this tile (inputs in, weights in, outputs out).
    transfer_bytes: int
    #: Compute cycles on the device's MAC array, including any
    #: partial-sum accumulation pass.
    compute_cycles: int
    #: Fraction of MAC rows doing useful work for this tile.
    utilization: float


@dataclass(frozen=True)
class LayerPlan:
    """The tiled mapping of one layer.

    ``coverage`` is the (channel extent, row extent) grid the tiles'
    ranges live on; a plan *stitches* when the union of its tiles'
    ``channels x rows`` rectangles — per input group — covers that grid
    exactly, without overlap.  Pass-through layers (Concat) carry no
    tiles and a ``(0, 0)`` coverage.
    """

    node_name: str
    category: str
    #: Mapping strategy: "whole", "split-out-channels", "split-rows",
    #: "split-in-channels", "matrix-rows", "matrix-blocks",
    #: "elementwise" or "passthrough".
    strategy: str
    #: Fallback-ladder step that produced the plan (1-4; 0 passthrough).
    step: int
    #: (channel extent, row extent) of the output grid tiles cover.
    coverage: tuple[int, int]
    out_shape: tuple[int, ...]
    tiles: tuple[Tile, ...]
    #: True when tiles of different ``in_group`` produce partial sums
    #: that must be accumulated into the final output.
    accumulate: bool = False

    # ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def max_footprint_bytes(self) -> int:
        return max((t.footprint_bytes for t in self.tiles), default=0)

    @property
    def total_macs(self) -> int:
        return sum(t.macs for t in self.tiles)

    @property
    def total_transfer_bytes(self) -> int:
        return sum(t.transfer_bytes for t in self.tiles)

    @property
    def worst_tile_cycles(self) -> int:
        return max((t.compute_cycles for t in self.tiles), default=0)

    @property
    def utilization(self) -> float:
        """MAC-weighted mean utilization across tiles."""
        total = self.total_macs
        if total <= 0:
            return min((t.utilization for t in self.tiles), default=1.0)
        return sum(t.macs * t.utilization for t in self.tiles) / total

    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Stable identity of the tiled computation (node name excluded).

        Two layers with equal signatures have identical tile grids and
        therefore identical cost on the same device — the run store's
        dedup counts them as one unique kernel, mirroring the GPU
        path's canonical kernel signatures.
        """
        payload = {
            "category": self.category,
            "strategy": self.strategy,
            "step": self.step,
            "coverage": list(self.coverage),
            "out_shape": list(self.out_shape),
            "accumulate": self.accumulate,
            "tiles": [
                [
                    t.channels.start, t.channels.stop,
                    t.rows.start, t.rows.stop,
                    t.in_group, t.n_in_groups,
                    t.footprint_bytes, t.macs, t.transfer_bytes,
                    t.compute_cycles,
                ]
                for t in self.tiles
            ],
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        return f"mapped:{self.category}:{digest[:16]}"

    def to_dict(self) -> dict:
        return {
            "node": self.node_name,
            "category": self.category,
            "strategy": self.strategy,
            "step": self.step,
            "coverage": list(self.coverage),
            "out_shape": list(self.out_shape),
            "accumulate": self.accumulate,
            "n_tiles": self.n_tiles,
            "max_footprint_bytes": self.max_footprint_bytes,
            "total_macs": self.total_macs,
            "total_transfer_bytes": self.total_transfer_bytes,
            "worst_tile_cycles": self.worst_tile_cycles,
            "utilization": round(self.utilization, 4),
        }


@dataclass(frozen=True)
class NetworkPlan:
    """The tiled mapping of a whole network onto one device."""

    network: str
    device: str
    #: Per-tile memory budget the plan was built against.
    tile_bytes: int
    #: Compute tiles the device offers (wave width at execution).
    tiles_available: int
    layers: tuple[LayerPlan, ...]

    @property
    def n_tiles(self) -> int:
        return sum(lp.n_tiles for lp in self.layers)

    @property
    def max_footprint_bytes(self) -> int:
        return max((lp.max_footprint_bytes for lp in self.layers), default=0)

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "device": self.device,
            "tile_bytes": self.tile_bytes,
            "tiles_available": self.tiles_available,
            "n_tiles": self.n_tiles,
            "max_footprint_bytes": self.max_footprint_bytes,
            "layers": [lp.to_dict() for lp in self.layers],
        }

    def describe(self) -> str:
        """A human-readable per-layer table of the plan."""
        header = (
            f"{self.network} on {self.device} "
            f"({self.tile_bytes // 1024} KB x {self.tiles_available} tiles)"
        )
        lines = [header, ""]
        lines.append(
            f"{'layer':<28} {'category':<12} {'strategy':<20} "
            f"{'tiles':>6} {'KB/tile':>8} {'util':>6}"
        )
        for lp in self.layers:
            kb = lp.max_footprint_bytes / 1024
            lines.append(
                f"{lp.node_name:<28} {lp.category:<12} "
                f"{lp.strategy + f' (step {lp.step})':<20} "
                f"{lp.n_tiles:>6} {kb:>8.1f} {lp.utilization:>6.2f}"
            )
        total_kb = self.max_footprint_bytes / 1024
        lines.append("")
        lines.append(
            f"{self.n_tiles} tiles total, worst footprint "
            f"{total_kb:.1f} KB of {self.tile_bytes / 1024:.0f} KB budget"
        )
        return "\n".join(lines)


def ranges(extent: int, chunk: int) -> Iterable[TileRange]:
    """Split ``[0, extent)`` into consecutive chunks of ``chunk``."""
    for start in range(0, extent, chunk):
        yield TileRange(start, min(extent, start + chunk))
