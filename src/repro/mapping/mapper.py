"""The compile-time tiling/partitioning mapper.

Splits each layer of a network into tiles that fit a device's per-tile
on-chip memory (BRAM region, PE SRAM), following the four-step fallback
ladder of the SpiNNaker2 layer distributors:

1. **whole** — the layer fits one tile unsplit;
2. **split output channels** — slice the output-channel dimension,
   choosing the largest multiple of the MAC-array row count that fits
   (keeps the array's rows busy);
3. **split activation rows** — additionally slice the output rows,
   re-fetching the halo rows each tile's convolution window overlaps;
4. **split input channels** — partition the input-channel dimension
   into groups producing partial sums, accumulated with an extra
   read-modify-write pass per non-first group.

Fully-connected / recurrent layers use the matrix form of the same
ladder (whole -> row blocks -> row x input blocks with accumulation);
pooling/normalization/activation layers split their flat output
element range; Concat is a zero-cost pass-through.

Within each ladder step the mapper searches the tiling factors for MAC
utilization first and tile count second, under the hard footprint
constraint — so every emitted plan is budget-feasible by construction.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.graph import NetworkGraph
from repro.core.layers.defs import (
    FC,
    LRN,
    Concat,
    Conv2D,
    DepthwiseConv2D,
    GRUCell,
    Layer,
    LSTMCell,
    Pool2D,
)
from repro.mapping.plan import LayerPlan, NetworkPlan, Tile, TileRange, ranges
from repro.platforms.accel import AcceleratorConfig

Shape = tuple[int, ...]

BYTES = 4  # f32 everywhere, matching the functional executor


class MappingError(Exception):
    """A layer cannot be tiled into the device's memory budget."""


def _ceil(a: int, b: int) -> int:
    return -(-a // b)


def _prod(shape: Sequence[int]) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n


def _max_feasible(hi: int, fits: Callable[[int], bool]) -> int:
    """Largest value in [1, hi] accepted by monotone *fits* (0 if none)."""
    if hi < 1 or not fits(1):
        return 0
    lo = 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def _row_utilization(rows_used: int, mac_rows: int) -> float:
    """Fraction of MAC rows busy when *rows_used* outputs share the array."""
    passes = _ceil(rows_used, mac_rows)
    return rows_used / (mac_rows * passes)


def _snap_channels(c_max: int, extent: int, mac_rows: int) -> int:
    """Utilization-first chunk size: the whole extent if it fits, else
    the largest multiple of the MAC row count, else whatever fits."""
    if c_max >= extent:
        return extent
    if c_max >= mac_rows:
        return mac_rows * (c_max // mac_rows)
    return c_max


# ----------------------------------------------------------------------
# convolution ladder
# ----------------------------------------------------------------------
def _map_conv(
    name: str,
    layer: Conv2D | DepthwiseConv2D,
    in_shape: Shape,
    out_shape: Shape,
    config: AcceleratorConfig,
) -> LayerPlan:
    ci, hi, wi = in_shape
    co, oh, ow = out_shape
    k, stride = layer.kernel, layer.stride
    depthwise = isinstance(layer, DepthwiseConv2D)
    bias = BYTES if layer.bias else 0
    budget = config.tile_memory_bytes
    mac_rows, mac_cols = config.mac_rows, config.mac_cols

    def footprint(c_t: int, r_t: int, ci_g: int) -> int:
        in_rows = min(hi, (r_t - 1) * stride + k)
        in_chans = c_t if depthwise else ci_g
        in_b = BYTES * in_chans * in_rows * wi
        w_b = c_t * (BYTES * k * k * (1 if depthwise else ci_g) + bias)
        out_b = BYTES * c_t * r_t * ow
        return in_b + w_b + out_b

    def search(ci_g: int) -> tuple[int, int] | None:
        """Best (c_t, r_t) for one input-channel group size, or None."""
        # ladder steps 1-2: full rows, channel split only
        c_max = _max_feasible(co, lambda c: footprint(c, oh, ci_g) <= budget)
        if c_max >= 1:
            return _snap_channels(c_max, co, mac_rows), oh
        # ladder step 3: also split rows; pick (utilization, -tiles)
        best: tuple[tuple[float, int], tuple[int, int]] | None = None
        for r_t in range(oh - 1, 0, -1):
            c_max = _max_feasible(co, lambda c: footprint(c, r_t, ci_g) <= budget)
            if c_max < 1:
                continue
            c_t = _snap_channels(c_max, co, mac_rows)
            util = _row_utilization(min(c_t, co), mac_rows)
            n_tiles = _ceil(co, c_t) * _ceil(oh, r_t)
            key = (util, -n_tiles)
            if best is None or key > best[0]:
                best = (key, (c_t, r_t))
        return best[1] if best else None

    # walk the ladder: K=1 first, then input-channel groups
    c_in_splits = (1,) if depthwise else tuple(range(1, ci + 1))
    seen_groups: set[int] = set()
    for n_groups in c_in_splits:
        ci_g = _ceil(ci, n_groups)
        if ci_g in seen_groups:
            continue
        seen_groups.add(ci_g)
        found = search(ci_g)
        if found is not None:
            c_t, r_t = found
            break
    else:
        raise MappingError(
            f"{name}: a 1-channel, 1-row, 1-input-channel conv tile "
            f"still exceeds {budget} bytes on {config.name}"
        )

    n_groups = 1 if depthwise else _ceil(ci, ci_g)
    accumulate = n_groups > 1
    if c_t == co and r_t == oh and not accumulate:
        strategy, step = "whole", 1
    elif accumulate:
        strategy, step = "split-in-channels", 4
    elif r_t < oh:
        strategy, step = "split-rows", 3
    else:
        strategy, step = "split-out-channels", 2

    tiles: list[Tile] = []
    for g in range(n_groups):
        g_lo = g * ci_g
        g_sz = min(ci, g_lo + ci_g) - g_lo
        for c_rng in ranges(co, c_t):
            for r_rng in ranges(oh, r_t):
                c_sz, r_sz = c_rng.size, r_rng.size
                in_chans = c_sz if depthwise else g_sz
                macs = c_sz * r_sz * ow * k * k * (1 if depthwise else g_sz)
                util = _row_utilization(c_sz, mac_rows)
                passes = _ceil(c_sz, mac_rows)
                cycles = _ceil(macs * passes, c_sz * mac_cols)
                fp = footprint(c_sz, r_sz, in_chans)
                transfer = fp
                if accumulate and g > 0:
                    # read partial sums back in and add them
                    out_b = BYTES * c_sz * r_sz * ow
                    transfer += out_b
                    cycles += _ceil(c_sz * r_sz * ow, mac_cols)
                tiles.append(Tile(
                    index=len(tiles),
                    channels=c_rng,
                    rows=r_rng,
                    in_group=g,
                    n_in_groups=n_groups,
                    footprint_bytes=fp,
                    macs=macs,
                    transfer_bytes=transfer,
                    compute_cycles=cycles,
                    utilization=util,
                ))

    return LayerPlan(
        node_name=name,
        category=layer.category,
        strategy=strategy,
        step=step,
        coverage=(co, oh),
        out_shape=tuple(out_shape),
        tiles=tuple(tiles),
        accumulate=accumulate,
    )


# ----------------------------------------------------------------------
# matrix ladder (FC / GRU / LSTM)
# ----------------------------------------------------------------------
def _map_matrix(
    name: str,
    layer: Layer,
    in_shapes: Sequence[Shape],
    out_shape: Shape,
    config: AcceleratorConfig,
) -> LayerPlan:
    out_n = _prod(out_shape)
    in_n = sum(_prod(s) for s in in_shapes)
    w_total = layer.weight_bytes(in_shapes)
    total_macs = layer.macs(in_shapes)
    budget = config.tile_memory_bytes
    mac_rows, mac_cols = config.mac_rows, config.mac_cols

    def footprint(rows_t: int, n_groups: int) -> int:
        in_b = _ceil(BYTES * in_n, n_groups)
        w_b = _ceil(w_total * rows_t, out_n * n_groups)
        out_b = BYTES * rows_t
        return in_b + w_b + out_b

    rows_t = 0
    for n_groups in range(1, max(2, in_n) + 1):
        r_max = _max_feasible(out_n, lambda r: footprint(r, n_groups) <= budget)
        if r_max >= 1:
            rows_t = _snap_channels(r_max, out_n, mac_rows)
            break
    else:
        raise MappingError(
            f"{name}: a single-output-row matrix tile still exceeds "
            f"{budget} bytes on {config.name}"
        )

    accumulate = n_groups > 1
    if rows_t == out_n and not accumulate:
        strategy, step = "whole", 1
    elif accumulate:
        strategy, step = "matrix-blocks", 3
    else:
        strategy, step = "matrix-rows", 2

    tiles: list[Tile] = []
    for g in range(n_groups):
        for r_rng in ranges(out_n, rows_t):
            r_sz = r_rng.size
            macs = _ceil(total_macs * r_sz, out_n * n_groups)
            util = _row_utilization(r_sz, mac_rows)
            passes = _ceil(r_sz, mac_rows)
            cycles = _ceil(macs * passes, r_sz * mac_cols) if macs else 1
            fp = footprint(r_sz, n_groups)
            transfer = fp
            if accumulate and g > 0:
                transfer += BYTES * r_sz
                cycles += _ceil(r_sz, mac_cols)
            tiles.append(Tile(
                index=len(tiles),
                channels=r_rng,
                rows=TileRange(0, 1),
                in_group=g,
                n_in_groups=n_groups,
                footprint_bytes=fp,
                macs=macs,
                transfer_bytes=transfer,
                compute_cycles=cycles,
                utilization=util,
            ))

    return LayerPlan(
        node_name=name,
        category=layer.category,
        strategy=strategy,
        step=step,
        coverage=(out_n, 1),
        out_shape=tuple(out_shape),
        tiles=tuple(tiles),
        accumulate=accumulate,
    )


# ----------------------------------------------------------------------
# elementwise split (pool / norm / activation / eltwise / softmax)
# ----------------------------------------------------------------------
def _map_elementwise(
    name: str,
    layer: Layer,
    in_shapes: Sequence[Shape],
    out_shape: Shape,
    config: AcceleratorConfig,
) -> LayerPlan:
    out_elems = _prod(out_shape)
    in_elems = sum(_prod(s) for s in in_shapes)
    w_b = layer.weight_bytes(in_shapes)  # per-channel params, kept resident
    budget = config.tile_memory_bytes
    mac_cols = config.mac_cols

    halo_b = 0
    if isinstance(layer, LRN) and len(in_shapes[0]) == 3:
        # cross-channel window: neighbouring channel maps are re-fetched
        _, h, w = in_shapes[0]
        halo_b = BYTES * (layer.local_size - 1) * h * w
    elif isinstance(layer, Pool2D) and not layer.global_pool:
        # overlapping input rows at the tile boundary
        halo_b = BYTES * layer.kernel * in_shapes[0][2]

    def footprint(e_t: int) -> int:
        in_b = _ceil(BYTES * in_elems * e_t, out_elems)
        return BYTES * e_t + in_b + w_b + halo_b

    e_t = _max_feasible(out_elems, lambda e: footprint(e) <= budget)
    if e_t < 1:
        raise MappingError(
            f"{name}: a single-element {layer.category} tile still "
            f"exceeds {budget} bytes on {config.name}"
        )

    work = max(1, _ceil(in_elems, out_elems))
    total_macs = layer.macs(in_shapes)
    tiles: list[Tile] = []
    for e_rng in ranges(out_elems, e_t):
        e_sz = e_rng.size
        macs = _ceil(total_macs * e_sz, out_elems) if total_macs else 0
        fp = footprint(e_sz)
        tiles.append(Tile(
            index=len(tiles),
            channels=TileRange(0, 1),
            rows=e_rng,
            in_group=0,
            n_in_groups=1,
            footprint_bytes=fp,
            macs=macs,
            transfer_bytes=fp,
            compute_cycles=_ceil(e_sz * work, mac_cols),
            utilization=1.0,
        ))

    return LayerPlan(
        node_name=name,
        category=layer.category,
        strategy="elementwise",
        step=1 if len(tiles) == 1 else 2,
        coverage=(1, out_elems),
        out_shape=tuple(out_shape),
        tiles=tuple(tiles),
    )


def _passthrough(name: str, layer: Layer, out_shape: Shape) -> LayerPlan:
    return LayerPlan(
        node_name=name,
        category=layer.category,
        strategy="passthrough",
        step=0,
        coverage=(0, 0),
        out_shape=tuple(out_shape),
        tiles=(),
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def map_layer(
    name: str,
    layer: Layer,
    in_shapes: Sequence[Shape],
    config: AcceleratorConfig,
) -> LayerPlan:
    """Tile one layer for *config*; raises :class:`MappingError`."""
    out_shape = tuple(layer.out_shape(in_shapes))
    if isinstance(layer, (Conv2D, DepthwiseConv2D)):
        return _map_conv(name, layer, tuple(in_shapes[0]), out_shape, config)
    if isinstance(layer, (FC, GRUCell, LSTMCell)):
        return _map_matrix(name, layer, in_shapes, out_shape, config)
    if isinstance(layer, Concat):
        return _passthrough(name, layer, out_shape)
    return _map_elementwise(name, layer, in_shapes, out_shape, config)


def map_network(
    network: str | NetworkGraph, config: AcceleratorConfig
) -> NetworkPlan:
    """Tile every layer of *network* for *config*.

    Accepts a suite network name or a built :class:`NetworkGraph`.
    The returned plan is budget-feasible by construction: no tile's
    footprint exceeds ``config.tile_memory_bytes``.
    """
    if isinstance(network, str):
        from repro.core.suite import get_network

        graph = get_network(network)
    else:
        graph = network
    layers = tuple(
        map_layer(node.name, node.layer, graph.in_shapes(node), config)
        for node in graph.nodes
    )
    return NetworkPlan(
        network=graph.name,
        device=config.name,
        tile_bytes=config.tile_memory_bytes,
        tiles_available=config.tiles,
        layers=layers,
    )
