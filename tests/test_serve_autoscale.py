"""Tests for the hysteresis autoscaler of ``repro.serve.autoscale``.

The headline property: under constant (or falling) load the policy
never oscillates — a scale-down decision is never followed by a
scale-up while the queue signal is non-increasing.  That is the whole
point of the dead band + projection guard + cooldown triple, so it is
checked by hypothesis over random signal streams, not by one example.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    AutoscaleConfig,
    AutoscaleSignals,
    PoissonWorkload,
    QueueDepthAutoscaler,
    ServeConfig,
    ServeDevice,
    ServeSim,
    make_pipeline,
)
from repro.serve.profiles import KernelTerm, LatencyProfile


def signals(now_ms, accepting, pending, completed=0, good=0):
    return AutoscaleSignals(
        now_ms=now_ms,
        accepting=accepting,
        pending_total=pending,
        window_completed=completed,
        window_good=good,
    )


class TestAutoscaleConfig:
    def test_dead_band_enforced(self):
        with pytest.raises(ValueError, match="dead band"):
            AutoscaleConfig(
                template="gp102", up_queue_depth=2.0, down_queue_depth=2.0
            )

    @pytest.mark.parametrize("kwargs", [
        {"min_devices": 0},
        {"min_devices": 4, "max_devices": 2},
        {"interval_ms": 0.0},
        {"cooldown_ms": -1.0},
        {"down_queue_depth": -0.5},
        {"slo_floor": 1.5},
        {"safety": 0.0},
        {"safety": 1.2},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscaleConfig(template="gp102", **kwargs)


class TestQueueDepthPolicy:
    def test_scales_up_on_deep_queues(self):
        scaler = QueueDepthAutoscaler(AutoscaleConfig(template="gp102"))
        assert scaler.decide(signals(0.0, accepting=2, pending=40)) == 1

    def test_scales_up_on_slo_floor_breach(self):
        scaler = QueueDepthAutoscaler(AutoscaleConfig(template="gp102"))
        assert scaler.decide(
            signals(0.0, accepting=2, pending=0, completed=100, good=50)
        ) == 1

    def test_holds_inside_dead_band(self):
        scaler = QueueDepthAutoscaler(
            AutoscaleConfig(
                template="gp102", up_queue_depth=8.0, down_queue_depth=1.0
            )
        )
        # 4 per device: above down, below up — the dead band.
        assert scaler.decide(signals(0.0, accepting=4, pending=16)) == 0

    def test_scales_down_when_idle(self):
        scaler = QueueDepthAutoscaler(AutoscaleConfig(template="gp102"))
        assert scaler.decide(signals(0.0, accepting=4, pending=0)) == -1

    def test_respects_fleet_bounds(self):
        scaler = QueueDepthAutoscaler(
            AutoscaleConfig(template="gp102", min_devices=2, max_devices=3)
        )
        assert scaler.decide(signals(0.0, accepting=3, pending=999)) == 0
        assert scaler.decide(signals(10_000.0, accepting=2, pending=0)) == 0
        # Below min_devices always grows, whatever the signals say.
        assert scaler.decide(signals(20_000.0, accepting=1, pending=0)) == 1

    def test_cooldown_blocks_back_to_back_actions(self):
        scaler = QueueDepthAutoscaler(
            AutoscaleConfig(template="gp102", cooldown_ms=5000.0)
        )
        assert scaler.decide(signals(0.0, accepting=2, pending=40)) == 1
        assert scaler.decide(signals(1000.0, accepting=3, pending=60)) == 0
        assert scaler.decide(signals(5000.0, accepting=3, pending=60)) == 1

    def test_projection_guard_blocks_borderline_down(self):
        cfg = AutoscaleConfig(
            template="gp102",
            up_queue_depth=8.0,
            down_queue_depth=1.0,
            safety=0.8,
            cooldown_ms=0.0,
        )
        scaler = QueueDepthAutoscaler(cfg)
        # 0.9/device is below the down threshold, but removing one of
        # the two devices would project to 1.8... fine; make it tight:
        # accepting=2, pending=13 -> 6.5/device (dead band, no down).
        # accepting=13, pending=12 -> 0.92/device, projected 1.0 — ok.
        assert scaler.decide(signals(0.0, accepting=13, pending=12)) == -1
        scaler.reset()
        # accepting=2, pending=1 -> 0.5/device, projected onto 1 device
        # = 1.0 < 6.4 — allowed.
        assert scaler.decide(signals(0.0, accepting=2, pending=1)) == -1
        scaler.reset()
        # Projection breach: accepting=2, pending=13 would be 6.5 but
        # that's already in the dead band; craft one below down_queue
        # whose projection crosses up*safety: down=7, up=8, safety=0.5
        cfg2 = AutoscaleConfig(
            template="gp102",
            up_queue_depth=8.0,
            down_queue_depth=7.0,
            safety=0.5,
            cooldown_ms=0.0,
        )
        scaler2 = QueueDepthAutoscaler(cfg2)
        # 6.9/device on 10 devices -> projected 7.67 > 8*0.5: blocked.
        assert scaler2.decide(signals(0.0, accepting=10, pending=69)) == 0

    def test_reset_forgets_cooldown(self):
        scaler = QueueDepthAutoscaler(
            AutoscaleConfig(template="gp102", cooldown_ms=60_000.0)
        )
        assert scaler.decide(signals(0.0, accepting=2, pending=40)) == 1
        scaler.reset()
        assert scaler.decide(signals(100.0, accepting=2, pending=40)) == 1


class TestNoOscillation:
    @settings(max_examples=80, deadline=None)
    @given(
        up=st.floats(1.0, 32.0),
        band=st.floats(0.1, 8.0),
        safety=st.floats(0.1, 1.0),
        cooldown=st.sampled_from([0.0, 1000.0, 5000.0]),
        start_pending=st.integers(0, 400),
        accepting=st.integers(2, 32),
        steps=st.integers(2, 40),
        drain=st.lists(st.integers(0, 25), min_size=40, max_size=40),
    )
    def test_down_never_followed_by_up_under_constant_load(
        self, up, band, safety, cooldown, start_pending, accepting, steps,
        drain,
    ):
        """Once the policy scales down, a non-increasing queue signal
        can never push it back up: the projection guard admitted the
        removal only because the *post-removal* depth stays safely
        below the up threshold."""
        cfg = AutoscaleConfig(
            template="gp102",
            min_devices=1,
            max_devices=64,
            up_queue_depth=up,
            down_queue_depth=max(0.0, up - band),
            safety=safety,
            cooldown_ms=cooldown,
            slo_floor=0.0,  # isolate the queue-depth pathway
        )
        scaler = QueueDepthAutoscaler(cfg)
        pending = start_pending
        saw_down = False
        for step in range(steps):
            decision = scaler.decide(
                signals(step * cfg.interval_ms, accepting, pending)
            )
            if decision == -1:
                saw_down = True
                accepting -= 1
            elif decision == 1:
                assert not saw_down, (
                    "oscillation: scale-up after a scale-down under "
                    "non-increasing load"
                )
                accepting += 1
            # Constant-or-falling offered load: queues only drain.
            pending = max(0, pending - drain[step % len(drain)])


def make_profile(network, platform, base_ms, per_item_ms=0.0):
    terms = (
        (KernelTerm(per_item_ms * 1e6, 1, 1, 1),) if per_item_ms else ()
    )
    return LatencyProfile(network, platform, 1.0, base_ms * 1e6, terms)


class TestEngineIntegration:
    def test_fleet_grows_under_load_and_shrinks_after(self, tiny_gpu):
        from dataclasses import replace

        fleet = [ServeDevice("dev#0", replace(tiny_gpu, name="Dev"))]
        profiles = {
            ("net", "Dev"): make_profile("net", "Dev", 2.0, 0.5),
            ("net", "GP102"): make_profile("net", "GP102", 2.0, 0.5),
        }
        config = ServeConfig(
            slo_ms=20.0, max_batch=4, max_queue=64,
            scheduler="least-loaded", seed=3,
        )
        pipeline = make_pipeline(
            autoscale=AutoscaleConfig(
                template="gp102", min_devices=1, max_devices=6,
                interval_ms=5.0, cooldown_ms=0.0,
                up_queue_depth=4.0, down_queue_depth=0.5,
            ),
        )
        # A burst well beyond one device's capacity, then silence.
        workload = PoissonWorkload(2000.0, 600, ["net"])
        sim = ServeSim(fleet, profiles, workload, config, pipeline)
        stats = sim.run("fast")
        scale = stats.autoscale
        assert scale["peak_devices"] > 1
        assert scale["peak_devices"] <= 6
        assert scale["final_devices"] < scale["peak_devices"]
        assert scale["final_devices"] >= 1
        # Events are [time_ms, delta, accepting_after] triples; the
        # burst-then-silence load must produce both directions.
        deltas = {event[1] for event in scale["events"]}
        assert deltas == {1, -1}

    def test_autoscale_requires_template_profiles(self, tiny_gpu):
        from dataclasses import replace

        fleet = [ServeDevice("dev#0", replace(tiny_gpu, name="Dev"))]
        profiles = {("net", "Dev"): make_profile("net", "Dev", 2.0)}
        pipeline = make_pipeline(
            autoscale=AutoscaleConfig(template="gp102"),
        )
        # Validated eagerly at construction, not at run time.
        with pytest.raises(ValueError, match="autoscale template"):
            ServeSim(
                fleet, profiles, PoissonWorkload(100.0, 10, ["net"]),
                ServeConfig(seed=1), pipeline,
            )
