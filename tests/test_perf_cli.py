"""Tests for the ``repro simulate`` and ``repro bench`` subcommands,
and the small-sample statistics behind ``repro bench --compare``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.bench import compare_bench
from repro.perf.stats import compare_samples, mann_whitney_u, summarize


class TestSimulateCli:
    def test_light_run_prints_table(self, capsys, tmp_path):
        exit_code = main([
            "simulate", "gru", "--light", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "gru" in out and "cycles" in out

    def test_json_output(self, capsys, tmp_path):
        exit_code = main([
            "simulate", "gru", "--light", "--json",
            "--cache-dir", str(tmp_path),
        ])
        assert exit_code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["network"] == "gru"
        assert rows[0]["total_cycles"] > 0
        assert rows[0]["kernels"] > 0

    def test_no_cache_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        exit_code = main(["simulate", "gru", "--light", "--no-cache"])
        assert exit_code == 0
        assert not (tmp_path / "cache").exists()

    def test_cache_reused_across_invocations(self, capsys, tmp_path):
        args = ["simulate", "gru", "--light", "--json",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert list(tmp_path.glob("*.json"))
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_parallel_jobs_match_serial(self, capsys, tmp_path):
        serial_args = ["simulate", "gru", "lstm", "--light", "--json",
                       "--no-cache"]
        assert main(serial_args) == 0
        serial = json.loads(capsys.readouterr().out)
        parallel_args = ["simulate", "gru", "lstm", "--light", "--json",
                         "--jobs", "2", "--cache-dir", str(tmp_path)]
        assert main(parallel_args) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel  # same results, same (input) order

    def test_unknown_network_rejected(self, capsys):
        assert main(["simulate", "nonesuch", "--light"]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestBenchCli:
    def test_writes_bench_json(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_sim.json"
        exit_code = main([
            "bench", "gru", "--light",
            "--output", str(out_path),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert exit_code == 0
        payload = json.loads(out_path.read_text())
        entry = payload["gru"]
        assert entry["cold_s"] > 0
        assert entry["warm_s"] > 0
        assert entry["kernels"] > 0
        assert entry["engine_version"]

    def test_seed_timing_included_on_request(self, tmp_path):
        out_path = tmp_path / "bench.json"
        exit_code = main([
            "bench", "gru", "--light", "--seed",
            "--output", str(out_path),
        ])
        assert exit_code == 0
        assert json.loads(out_path.read_text())["gru"]["seed_s"] > 0

    def test_unknown_network_rejected(self, capsys):
        assert main(["bench", "nonesuch", "--light"]) == 2
        assert "unknown network" in capsys.readouterr().err

    def test_runs_records_samples_and_stats(self, tmp_path):
        out_path = tmp_path / "bench.json"
        exit_code = main([
            "bench", "gru", "--light", "--runs", "3",
            "--output", str(out_path),
        ])
        assert exit_code == 0
        entry = json.loads(out_path.read_text())["gru"]
        for series in ("cold", "warm", "run_warm"):
            assert len(entry["samples"][series]) == 3
        assert entry["cold_s"] == min(entry["samples"]["cold"])
        assert entry["cold_mean_s"] >= entry["cold_s"]
        assert entry["cold_std_s"] >= 0
        assert entry["cold_ci95_s"] >= 0
        assert entry["engine"] == "vector"
        assert entry["engine_version"] == "fast-3"

    def test_engine_flag_recorded(self, tmp_path):
        from repro.gpu import engine as engine_registry

        out_path = tmp_path / "bench.json"
        try:
            exit_code = main([
                "bench", "gru", "--light", "--engine", "fast",
                "--output", str(out_path),
            ])
        finally:
            engine_registry.set_engine(None)
        assert exit_code == 0
        entry = json.loads(out_path.read_text())["gru"]
        assert entry["engine"] == "fast"
        assert entry["engine_version"] == "fast-2.1"

    def test_compare_against_self_passes(self, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main([
            "bench", "gru", "--light", "--runs", "5",
            "--output", str(out_path),
        ]) == 0
        # Re-benching against the just-written baseline on the same
        # machine must not flag a regression.
        assert main([
            "bench", "gru", "--light", "--runs", "5",
            "--output", str(tmp_path / "again.json"),
            "--compare", str(out_path),
            "--threshold", "2.0",  # generous: CI runners are noisy
        ]) == 0

    def test_compare_flags_regression(self, capsys, tmp_path):
        # A fabricated baseline 1000x faster than reality forces a
        # statistically significant slowdown -> exit 1.
        baseline = {
            "gru": {
                "cold_s": 1e-6,
                "samples": {"cold": [1e-6, 1.1e-6, 0.9e-6, 1.05e-6, 0.95e-6]},
                "engine_version": "fast-2.1",
            }
        }
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(baseline))
        exit_code = main([
            "bench", "gru", "--light", "--runs", "5",
            "--output", str(tmp_path / "bench.json"),
            "--compare", str(base_path),
        ])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "significantly slower" in captured.err


class TestStats:
    def test_summarize_single_sample(self):
        stats = summarize([2.5])
        assert stats == {"n": 1, "mean": 2.5, "std": 0.0, "ci95": 0.0}

    def test_summarize_known_values(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == 2.0
        assert stats["std"] == pytest.approx(1.0)
        # t(0.975, df=2) = 4.303; CI = t * s / sqrt(n)
        assert stats["ci95"] == pytest.approx(4.303 / 3 ** 0.5, rel=1e-3)

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_mann_whitney_separated_samples(self):
        test = mann_whitney_u([1, 2, 3, 4, 5], [6, 7, 8, 9, 10])
        assert test["u"] == 25.0  # candidate wins every pair
        assert test["p"] < 0.01

    def test_mann_whitney_identical_samples(self):
        assert mann_whitney_u([1, 2, 3], [1, 2, 3])["p"] > 0.5
        assert mann_whitney_u([5, 5, 5], [5, 5, 5])["p"] == 1.0

    def test_mann_whitney_direction_is_one_sided(self):
        # A *faster* candidate must never look significant.
        test = mann_whitney_u([6, 7, 8, 9, 10], [1, 2, 3, 4, 5])
        assert test["p"] > 0.95

    def test_compare_requires_threshold_and_significance(self):
        slow = compare_samples(
            [1.0, 1.02, 0.98, 1.01, 0.99], [2.0, 2.02, 1.98, 2.01, 1.99]
        )
        assert slow["slower"] and slow["method"] == "mann-whitney"
        # Significant but under the ratio threshold: not a regression.
        small = compare_samples(
            [1.0, 1.02, 0.98, 1.01, 0.99],
            [1.05, 1.07, 1.03, 1.06, 1.04],
            threshold=1.10,
        )
        assert small["p"] < 0.05 and not small["slower"]
        # Over the threshold but pure noise: not a regression either.
        noisy = compare_samples([1.0, 2.0, 0.5], [1.1, 2.2, 0.55], threshold=1.05)
        assert not noisy["slower"]

    def test_compare_single_sample_falls_back_to_ratio(self):
        verdict = compare_samples([1.0], [1.5])
        assert verdict["method"] == "ratio-only"
        assert verdict["p"] is None
        assert verdict["slower"]
        assert not compare_samples([1.0], [1.05])["slower"]

    def test_compare_bench_payloads(self):
        def entry(samples):
            return {
                "cold_s": min(samples),
                "samples": {"cold": samples},
                "engine_version": "x",
            }

        baseline = {
            "gru": entry([1.0, 1.1, 0.9, 1.05, 0.95]),
            "lstm": entry([1.0, 1.1, 0.9, 1.05, 0.95]),
            "only_base": entry([1.0]),
        }
        candidate = {
            "gru": entry([3.0, 3.1, 2.9, 3.05, 2.95]),  # regressed
            "lstm": entry([1.0, 1.1, 0.9, 1.05, 0.95]),  # unchanged
            "only_cand": entry([1.0]),
        }
        report = compare_bench(baseline, candidate)
        assert report["regressions"] == ["gru"]
        assert not report["networks"]["lstm"]["slower"]
        assert sorted(report["skipped"]) == ["only_base", "only_cand"]


class TestServeBench:
    def test_run_serve_bench_payload_and_gate(self):
        from repro.perf.serve_bench import gate_serve, run_serve_bench

        # Tiny synthetic scenario: fast enough for tier-1, but it still
        # exercises the interleaved sampling, the digest cross-check
        # and the gate plumbing end to end.
        payload = run_serve_bench(requests=1500, devices=3, runs=2, seed=1)
        assert set(payload) >= {"serve-fast", "serve-heap"}
        for key in ("serve-fast", "serve-heap"):
            entry = payload[key]
            assert entry["requests"] == 1500
            assert entry["devices"] == 3
            assert len(entry["samples"]["cold"]) == 2
            assert entry["cold_s"] == min(entry["samples"]["cold"])
            assert entry["digest"]
        # The run itself asserts digest equality; double-check here.
        assert payload["serve-fast"]["digest"] == payload["serve-heap"]["digest"]
        verdict = gate_serve(payload, threshold=1000.0)
        assert not verdict["slower"]
        assert verdict["ratio"] > 0

    def test_bench_serve_cli_writes_payload(self, capsys, tmp_path):
        out_path = tmp_path / "bench-serve.json"
        exit_code = main([
            "bench", "--serve", "--serve-requests", "1000",
            "--serve-devices", "2", "--runs", "1",
            "--output", str(out_path),
        ])
        assert exit_code == 0
        payload = json.loads(out_path.read_text())
        assert "serve-fast" in payload and "serve-heap" in payload
