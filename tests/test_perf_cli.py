"""Tests for the ``repro simulate`` and ``repro bench`` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestSimulateCli:
    def test_light_run_prints_table(self, capsys, tmp_path):
        exit_code = main([
            "simulate", "gru", "--light", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "gru" in out and "cycles" in out

    def test_json_output(self, capsys, tmp_path):
        exit_code = main([
            "simulate", "gru", "--light", "--json",
            "--cache-dir", str(tmp_path),
        ])
        assert exit_code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["network"] == "gru"
        assert rows[0]["total_cycles"] > 0
        assert rows[0]["kernels"] > 0

    def test_no_cache_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        exit_code = main(["simulate", "gru", "--light", "--no-cache"])
        assert exit_code == 0
        assert not (tmp_path / "cache").exists()

    def test_cache_reused_across_invocations(self, capsys, tmp_path):
        args = ["simulate", "gru", "--light", "--json",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert list(tmp_path.glob("*.json"))
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_parallel_jobs_match_serial(self, capsys, tmp_path):
        serial_args = ["simulate", "gru", "lstm", "--light", "--json",
                       "--no-cache"]
        assert main(serial_args) == 0
        serial = json.loads(capsys.readouterr().out)
        parallel_args = ["simulate", "gru", "lstm", "--light", "--json",
                         "--jobs", "2", "--cache-dir", str(tmp_path)]
        assert main(parallel_args) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel  # same results, same (input) order

    def test_unknown_network_rejected(self, capsys):
        assert main(["simulate", "nonesuch", "--light"]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestBenchCli:
    def test_writes_bench_json(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_sim.json"
        exit_code = main([
            "bench", "gru", "--light",
            "--output", str(out_path),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert exit_code == 0
        payload = json.loads(out_path.read_text())
        entry = payload["gru"]
        assert entry["cold_s"] > 0
        assert entry["warm_s"] > 0
        assert entry["kernels"] > 0
        assert entry["engine_version"]

    def test_seed_timing_included_on_request(self, tmp_path):
        out_path = tmp_path / "bench.json"
        exit_code = main([
            "bench", "gru", "--light", "--seed",
            "--output", str(out_path),
        ])
        assert exit_code == 0
        assert json.loads(out_path.read_text())["gru"]["seed_s"] > 0

    def test_unknown_network_rejected(self, capsys):
        assert main(["bench", "nonesuch", "--light"]) == 2
        assert "unknown network" in capsys.readouterr().err
