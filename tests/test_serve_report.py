"""Tests for serve markdown reporting, including observability sections.

The report's histogram/gauge sections render the per-run
``MetricsRegistry.to_dict()`` snapshots captured by ``repro serve
--report``; without a snapshot the report must stay byte-identical to
the pre-observability format.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cli import main
from repro.obs import Tracer, set_tracer
from repro.serve import PoissonWorkload, ServeConfig, ServeDevice, run_serve
from repro.serve.profiles import KernelTerm, LatencyProfile
from repro.serve.report import serve_markdown, write_serve_report


def _run_traced(tiny_gpu):
    device = ServeDevice("dev#0", replace(tiny_gpu, name="Dev"))
    profile = LatencyProfile(
        "net", "Dev", 1.0, 5.0 * 1e6, (KernelTerm(0.5 * 1e6, 1, 1, 1),)
    )
    workload = PoissonWorkload(rps=150.0, requests=120, networks=["net"])
    tracer = Tracer(warps=False)
    previous = set_tracer(tracer)
    try:
        stats = run_serve(
            [device], {("net", "Dev"): profile}, workload,
            ServeConfig(seed=7, scheduler="latency-aware"),
        )
    finally:
        set_tracer(previous)
    return stats, tracer.metrics.to_dict()


class TestServeMarkdownMetrics:
    def test_metrics_sections_render(self, tiny_gpu):
        stats, snapshot = _run_traced(tiny_gpu)
        text = serve_markdown([stats], {"seed": 7}, metrics=[snapshot])
        assert "Latency/batch histograms — latency-aware" in text
        assert "Queue-depth gauges — latency-aware" in text
        assert "serve.latency_ms" in text
        assert "serve.batch_size" in text
        assert "serve.queue_depth.dev#0" in text
        # histogram/gauge tables carry the distribution summary columns
        assert "| metric" in text and "| p99" in text
        assert "| gauge" in text and "| samples |" in text

    def test_no_metrics_no_sections(self, tiny_gpu):
        stats, _ = _run_traced(tiny_gpu)
        bare = serve_markdown([stats], {"seed": 7})
        assert "histograms" not in bare
        assert "gauges" not in bare
        assert bare == serve_markdown([stats], {"seed": 7}, metrics=[])

    def test_empty_snapshot_omits_sections(self, tiny_gpu):
        stats, _ = _run_traced(tiny_gpu)
        empty = {"histograms": {"serve.latency_ms": {"count": 0}}, "gauges": {}}
        text = serve_markdown([stats], {"seed": 7}, metrics=[empty])
        assert "histograms" not in text
        assert "gauges" not in text

    def test_write_serve_report_threads_metrics(self, tiny_gpu, tmp_path):
        stats, snapshot = _run_traced(tiny_gpu)
        path = write_serve_report(
            tmp_path / "serve.md", [stats], {"seed": 7}, metrics=[snapshot]
        )
        assert "Queue-depth gauges" in path.read_text()


class TestServeCliReportMetrics:
    def test_cli_report_includes_observability(self, capsys, tmp_path):
        report = tmp_path / "serve.md"
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102,s2npu",
            "--rps", "300", "--requests", "150", "--light",
            "--cache-dir", str(tmp_path),
            "--scheduler", "round-robin,latency-aware",
            "--report", str(report),
        ])
        assert exit_code == 0
        text = report.read_text()
        # one histogram/gauge section per compared scheduler
        assert text.count("Latency/batch histograms") == 2
        assert text.count("Queue-depth gauges") == 2
        assert "serve.queue_depth.gp102#0" in text
        assert "serve.queue_depth.s2npu#0" in text
