"""Integration tests: the seven reference networks end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TangoSuite, get_network, list_networks
from repro.core.graph import INPUT
from repro.core.suite import BENCHMARK_INFO


@pytest.fixture(scope="module")
def suite():
    return TangoSuite()


class TestArchitectures:
    def test_suite_has_seven_networks(self):
        assert len(list_networks()) == 7

    def test_cifarnet_structure(self):
        g = get_network("cifarnet")
        convs = [n for n in g.nodes if n.layer.category == "Conv"]
        fcs = [n for n in g.nodes if n.layer.category == "FC"]
        assert len(convs) == 3 and len(fcs) == 2  # "3 conv + 2 FC"
        assert g.out_shape("fc2") == (9,)  # nine traffic signals

    def test_alexnet_structure(self):
        g = get_network("alexnet")
        convs = [n for n in g.nodes if n.layer.category == "Conv"]
        fcs = [n for n in g.nodes if n.layer.category == "FC"]
        norms = [n for n in g.nodes if n.layer.category == "Norm"]
        assert len(convs) == 5 and len(fcs) == 3 and len(norms) == 2
        assert g.out_shape("conv1") == (96, 55, 55)
        assert g.out_shape("pool5") == (256, 6, 6)

    def test_squeezenet_fire_modules(self):
        g = get_network("squeezenet")
        squeezes = [n for n in g.nodes if n.layer.category == "Fire_Squeeze"]
        expands = [n for n in g.nodes if n.layer.category == "Fire_Expand"]
        assert len(squeezes) == 8  # fire2..fire9
        assert len(expands) == 16  # 1x1 + 3x3 each
        assert g.out_shape("fire9/concat") == (512, 13, 13)
        assert g.out_shape("conv10") == (1000, 15, 15)  # conv10 pad=1

    def test_resnet50_has_49_convs_plus_projections_and_one_fc(self):
        g = get_network("resnet")
        convs = [n for n in g.nodes if n.layer.category == "Conv"]
        fcs = [n for n in g.nodes if n.layer.category == "FC"]
        # 49 convolutions on the main path plus 4 shortcut projections.
        assert len(convs) == 53
        assert len(fcs) == 1
        eltwise = [n for n in g.nodes if n.layer.category == "Eltwise"]
        assert len(eltwise) == 16  # 3 + 4 + 6 + 3 bottlenecks

    def test_resnet_stage_shapes(self):
        g = get_network("resnet")
        assert g.out_shape("pool1") == (64, 56, 56)
        assert g.out_shape("relu_res2c") == (256, 56, 56)
        assert g.out_shape("relu_res3d") == (512, 28, 28)
        assert g.out_shape("relu_res4f") == (1024, 14, 14)
        assert g.out_shape("relu_res5c") == (2048, 7, 7)

    def test_vggnet_structure(self):
        g = get_network("vggnet")
        convs = [n for n in g.nodes if n.layer.category == "Conv"]
        pools = [n for n in g.nodes if n.layer.category == "Pooling"]
        fcs = [n for n in g.nodes if n.layer.category == "FC"]
        assert (len(convs), len(pools), len(fcs)) == (13, 5, 3)
        assert g.out_shape("pool5") == (512, 7, 7)

    def test_rnn_hidden_sizes(self):
        assert get_network("gru").out_shape("gru_layer") == (100,)
        assert get_network("lstm").out_shape("lstm_layer") == (100,)

    @pytest.mark.parametrize("name", list_networks())
    def test_weight_shapes_consistent(self, name):
        g = get_network(name)
        for node_name, tensors in g.weight_shapes().items():
            for tensor_name, shape in tensors.items():
                assert all(d > 0 for d in shape), f"{node_name}/{tensor_name}"


class TestInference:
    @pytest.mark.parametrize("name", list_networks())
    def test_end_to_end_inference(self, suite, name):
        bench = suite[name]
        out = bench.run()
        expected = bench.graph.out_shape(bench.graph.output_name)
        assert out.shape == tuple(expected)
        assert np.isfinite(out).all()

    @pytest.mark.parametrize("name", ("cifarnet", "squeezenet"))
    def test_cnn_output_is_probability_distribution(self, suite, name):
        out = suite[name].run()
        assert out.sum() == pytest.approx(1.0, abs=1e-5)
        assert (out >= 0).all()

    def test_inference_is_deterministic(self, suite):
        a = suite["cifarnet"].run()
        b = suite["cifarnet"].run()
        np.testing.assert_array_equal(a, b)

    def test_wrong_input_shape_rejected(self, suite):
        with pytest.raises(ValueError, match="input shape"):
            suite["cifarnet"].run(np.zeros((3, 16, 16), dtype=np.float32))

    def test_record_captures_every_layer(self, suite):
        bench = suite["cifarnet"]
        record = {}
        bench.graph.run(bench.standard_input(), bench.weights, record=record)
        assert set(record) == {n.name for n in bench.graph.nodes}

    def test_rnn_projection_produces_scalar_price(self, suite):
        out = suite["gru"].run()
        assert out.shape == (1,)

    def test_resnet_shortcut_changes_output(self, suite):
        """The eltwise shortcut must actually contribute to the output."""
        bench = suite["resnet"]
        record = {}
        bench.graph.run(bench.standard_input(), bench.weights, record=record)
        eltwise_out = record["res2a_eltwise"]
        branch_out = record["scale_res2a_branch2c"]
        assert not np.allclose(eltwise_out, branch_out)


class TestMetadata:
    def test_table1_metadata_complete(self):
        for name in list_networks():
            info = BENCHMARK_INFO[name]
            assert info.input_description and info.model_description
            assert info.output_description

    def test_opencl_coverage_matches_paper(self):
        opencl = {n for n, i in BENCHMARK_INFO.items() if "opencl" in i.languages}
        assert opencl == {"cifarnet", "alexnet"}

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError, match="unknown network"):
            get_network("transformer")


class TestGraphConstruction:
    def test_duplicate_node_rejected(self):
        from repro.core.graph import NetworkGraph
        from repro.core.layers import ReLU

        g = NetworkGraph("t", (1, 4, 4))
        g.add("a", ReLU())
        with pytest.raises(ValueError, match="duplicate"):
            g.add("a", ReLU())

    def test_unknown_input_rejected(self):
        from repro.core.graph import NetworkGraph
        from repro.core.layers import ReLU

        g = NetworkGraph("t", (1, 4, 4))
        with pytest.raises(ValueError, match="unknown node"):
            g.add("a", ReLU(), "nonexistent")

    def test_arity_mismatch_rejected(self):
        from repro.core.graph import NetworkGraph
        from repro.core.layers import Eltwise

        g = NetworkGraph("t", (1, 4, 4))
        with pytest.raises(ValueError, match="expects 2 inputs"):
            g.add("add", Eltwise(), INPUT)
