"""Tests for the terminal chart renderer and the CLI output options."""

from __future__ import annotations

import json

from repro.harness.render import render_experiment, render_series
from repro.harness.report import Check, ExperimentResult
from repro.harness.suite import main


class TestRenderSeries:
    def test_bars_scale_to_peak(self):
        text = render_series("s", {"a": 2.0, "b": 1.0})
        lines = text.splitlines()
        bar_a = lines[1].split()[1]
        bar_b = lines[2].split()[1]
        assert len(bar_a) > len(bar_b)

    def test_empty_for_non_numeric(self):
        assert render_series("s", {"a": "text"}) == ""

    def test_zero_values_safe(self):
        text = render_series("s", {"a": 0.0, "b": 0.0})
        assert "a" in text  # renders labels without dividing by zero


class TestRenderExperiment:
    def test_flat_and_nested_series(self):
        result = ExperimentResult(
            "figX", "Title",
            series={
                "flat": {"a": 1.0, "b": 2.0},
                "nested": {"net1": {"x": 0.5}, "net2": {"x": 0.7}},
            },
        )
        text = render_experiment(result)
        assert "figX" in text
        assert "flat" in text
        assert "nested / net1" in text and "nested / net2" in text

    def test_skips_unchartable(self):
        result = ExperimentResult("figY", "T", series={"meta": {"a": "str"}})
        text = render_experiment(result)
        assert "figY" in text and "meta" not in text


class TestCliOutputs:
    def test_chart_flag(self, capsys):
        assert main(["fig09", "--no-cache", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "█" in out

    def test_json_export(self, tmp_path, capsys):
        assert main(["table2", "--no-cache", "--json", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "table2.json").read_text())
        assert payload["id"] == "table2"
        assert all(check["passed"] for check in payload["checks"])
