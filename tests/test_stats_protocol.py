"""Tests for the unified :class:`repro.stats.Stats` protocol surface.

All three result containers — ``KernelStats`` (GPU), ``ServeStats``
(serving) and ``ExecutionReport`` (run orchestration) — satisfy one
protocol (``to_dict`` / ``from_dict`` / ``summary``) and are
re-exported from the top-level ``repro`` package.
"""

from __future__ import annotations

import importlib
import sys

import pytest

import repro
from repro.profiling.stall import StallReason
from repro.profiling.stats import KernelStats
from repro.runs.executor import ExecutionReport
from repro.serve.stats import DeviceServeStats, ServeStats
from repro.stats import Stats


def make_serve_stats() -> ServeStats:
    return ServeStats(
        scheduler="latency-aware", seed=7, slo_ms=50.0,
        offered=100, completed=90, shed=10, slo_violations=3,
        duration_ms=1000.0,
        latency_p50_ms=5.0, latency_p95_ms=9.0, latency_p99_ms=11.0,
        latency_mean_ms=5.5, latency_max_ms=12.0,
        throughput_rps=90.0, goodput_rps=87.0,
        devices=[DeviceServeStats(
            name="gp102#0", platform="GP102", requests=90, batches=30,
            shed=10, busy_ms=800.0, utilization=0.8, mean_batch=3.0,
            queue_depth=[(0.0, 0), (10.0, 2)],
        )],
        per_network={"alexnet": {"completed": 90}},
    )


class TestProtocolConformance:
    def test_all_three_satisfy_the_protocol(self):
        stats = KernelStats()
        stats.stalls[StallReason.SYNC] = 4.0
        instances = [
            stats,
            make_serve_stats(),
            ExecutionReport(planned=5, fresh=2, cached=3),
        ]
        for instance in instances:
            assert isinstance(instance, Stats)

    def test_summaries_are_single_lines(self):
        for instance in (
            KernelStats(),
            make_serve_stats(),
            ExecutionReport(planned=5, fresh=2, cached=3),
        ):
            summary = instance.summary()
            assert summary and "\n" not in summary


class TestRoundTrips:
    def test_kernel_stats_round_trip(self):
        stats = KernelStats()
        stats.cycles = 123.0
        stats.issued = 456.0
        stats.stalls[StallReason.MEMORY_DEPENDENCY] = 7.0
        clone = KernelStats.from_dict(stats.to_dict())
        assert clone.to_dict() == stats.to_dict()

    def test_serve_stats_round_trip(self):
        stats = make_serve_stats()
        clone = ServeStats.from_dict(stats.to_dict())
        assert clone.to_dict() == stats.to_dict()
        assert clone.slo_attainment == pytest.approx(stats.slo_attainment)

    def test_execution_report_round_trip(self):
        report = ExecutionReport(planned=8, fresh=3, cached=5)
        clone = ExecutionReport.from_dict(report.to_dict())
        assert clone == report


class TestPackageSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_stats_types_exported(self):
        assert repro.KernelStats is KernelStats
        assert repro.ServeStats is ServeStats
        assert repro.ExecutionReport is ExecutionReport
        assert repro.Stats is Stats


class TestPerfCacheRemoval:
    def test_shim_is_gone(self):
        # The deprecated repro.perf.cache facade completed its removal
        # cycle; the import must fail rather than silently resurrect a
        # second cache surface.
        sys.modules.pop("repro.perf.cache", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.perf.cache")

    def test_perf_package_re_exports_store_layer(self):
        import warnings

        sys.modules.pop("repro.perf", None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            module = importlib.import_module("repro.perf")
        from repro.runs.store import KernelResultCache

        assert module.KernelResultCache is KernelResultCache
