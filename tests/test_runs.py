"""The run pipeline: planner dedup, executor read-through, unified store.

The planner must collapse the 21 registered experiments' requested runs
into the minimal unique matrix; the executor must simulate each unique
spec at most once (memory -> store -> simulate); the store must round-
trip whole-network results byte-identically and invalidate on any key
ingredient change.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.gpu.config import SimOptions
from repro.platforms import GP102, TX1
from repro.runs import (
    Executor,
    PlanContext,
    ResultStore,
    RunSpec,
    build_plan,
    run_key,
)
from repro.runs import store as store_mod
from repro.runs.registry import all_experiments
from repro.runs.store import cache_stats, clear_cache, result_from_payload, result_to_payload

LIGHT = SimOptions(max_trips=4, max_outer_trips=1, max_sim_blocks=1)


class TestPlanner:
    def test_full_suite_dedupes_to_59_unique_runs(self):
        plan = build_plan(all_experiments().values())
        assert len(plan.specs) == 59
        assert plan.total_requested > len(plan.specs)
        # Dedup really is by content: no two specs share a key.
        keys = [spec.key() for spec in plan.specs]
        assert len(set(keys)) == len(keys)

    def test_every_simulating_experiment_contributes(self):
        plan = build_plan(all_experiments().values())
        assert set(plan.by_experiment) == set(all_experiments())
        analytic = {exp_id for exp_id, specs in plan.by_experiment.items() if not specs}
        assert analytic == {
            "table1", "table2", "table3", "table4",
            "fig08", "fig09", "fig10", "fig11", "fig12",
        }

    def test_shared_runs_planned_once(self):
        experiments = all_experiments()
        plan = build_plan([experiments["fig01"], experiments["fig02"]])
        # Figure 1's default-config CNN runs are inside Figure 2's L1
        # sweep: together they need no more than the sweep alone.
        assert len(plan.specs) == len(build_plan([experiments["fig02"]]).specs)

    def test_restricted_context_shrinks_matrix(self):
        ctx = PlanContext(networks=("cifarnet", "gru"), options=LIGHT)
        plan = build_plan(all_experiments().values(), ctx)
        assert 0 < len(plan.specs) < 59
        assert {spec.network for spec in plan.specs} == {"cifarnet", "gru"}

    def test_describe_lists_each_unique_run_once(self):
        plan = build_plan(all_experiments().values())
        lines = plan.describe().splitlines()
        assert "-> 59 unique" in lines[0]
        assert len(lines) == 1 + 59


class TestRunKey:
    def test_key_differs_by_network(self):
        assert run_key("gru", GP102, LIGHT) != run_key("lstm", GP102, LIGHT)

    def test_key_differs_by_config(self):
        assert run_key("gru", GP102, LIGHT) != run_key("gru", TX1, LIGHT)
        assert run_key("gru", GP102, LIGHT) != run_key("gru", GP102.with_l1(0), LIGHT)

    def test_key_differs_by_options(self):
        assert run_key("gru", GP102, LIGHT) != run_key(
            "gru", GP102, replace(LIGHT, scheduler="lrr")
        )

    def test_key_differs_by_engine_version(self, monkeypatch):
        import repro.gpu.vector as vector

        before = run_key("gru", GP102, LIGHT)
        monkeypatch.setattr(vector, "ENGINE_VERSION", "test-engine")
        assert run_key("gru", GP102, LIGHT) != before

    def test_key_differs_by_engine(self, monkeypatch):
        from repro.gpu import engine

        before = run_key("gru", GP102, LIGHT)
        monkeypatch.setattr(engine, "_forced", "fast")
        assert run_key("gru", GP102, LIGHT) != before


class TestExecutor:
    def test_memory_read_through(self):
        executor = Executor()
        spec = RunSpec("gru", GP102, LIGHT)
        first = executor.run(spec)
        second = executor.run(spec)
        assert executor.fresh == 1
        assert second is first

    def test_store_read_through_is_value_identical(self, tmp_path):
        spec = RunSpec("gru", GP102, LIGHT)
        fresh = Executor(ResultStore(tmp_path)).run(spec)
        cached = Executor(ResultStore(tmp_path)).run(spec)
        assert cached.total_cycles == fresh.total_cycles
        assert cached.total_time_ms == fresh.total_time_ms
        assert cached.cycles_by_category() == fresh.cycles_by_category()
        assert cached.aggregate().issued == fresh.aggregate().issued

    def test_execute_reports_fresh_then_cached(self, tmp_path):
        specs = [RunSpec("gru", GP102, LIGHT), RunSpec("gru", TX1, LIGHT)]
        store = ResultStore(tmp_path)
        report = Executor(store).execute(specs)
        assert (report.planned, report.fresh, report.cached) == (2, 2, 0)
        rerun = Executor(ResultStore(tmp_path)).execute(specs)
        assert (rerun.planned, rerun.fresh, rerun.cached) == (2, 0, 2)
        assert "2 unique runs: 0 fresh, 2 cached" in rerun.summary()

    def test_parallel_execute_matches_serial(self, tmp_path):
        specs = [RunSpec("gru", GP102, LIGHT), RunSpec("cifarnet", GP102, LIGHT)]
        serial = Executor()
        for spec in specs:
            serial.run(spec)
        parallel = Executor(ResultStore(tmp_path))
        report = parallel.execute(specs, jobs=2)
        assert report.fresh == 2
        for spec in specs:
            assert parallel.run(spec).total_cycles == serial.run(spec).total_cycles

    def test_parallel_execute_chunks_large_plans(self, tmp_path):
        from repro.runs import executor as executor_mod

        # 2 pending specs at jobs=2 -> ceil(2/8)=1 spec per chunk; the
        # chunk math must never produce an empty or oversize chunk.
        for pending, jobs in ((2, 2), (100, 4), (1, 8)):
            chunk = max(1, min(
                executor_mod.CHUNK_MAX_SPECS,
                -(-pending // (jobs * executor_mod.CHUNKS_PER_JOB)),
            ))
            assert 1 <= chunk <= executor_mod.CHUNK_MAX_SPECS

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_spec_is_surfaced_not_raised(self, tmp_path, jobs):
        good = [RunSpec("gru", GP102, LIGHT), RunSpec("cifarnet", GP102, LIGHT)]
        bad = RunSpec("no_such_net", GP102, LIGHT)
        report = Executor(ResultStore(tmp_path)).execute(good + [bad], jobs=jobs)
        assert report.planned == 3
        assert report.fresh == 2
        assert report.cached == 0
        assert list(report.failed) == [bad.key()]
        message = report.failed[bad.key()]
        assert "no_such_net" in message and "KeyError" in message
        assert "1 failed" in report.summary()

    def test_failed_report_roundtrips_and_stays_compatible(self):
        from repro.runs.executor import ExecutionReport

        with_failure = ExecutionReport(
            planned=2, fresh=1, cached=0, failed={"k": "boom"}
        )
        assert ExecutionReport.from_dict(with_failure.to_dict()) == with_failure
        # pre-failure payloads (no 'failed' key) still load
        legacy = ExecutionReport.from_dict(
            {"planned": 5, "fresh": 2, "cached": 3}
        )
        assert legacy.failed == {}


class TestStore:
    def test_payload_roundtrip_is_exact(self):
        result = Executor().run(RunSpec("gru", GP102, LIGHT))
        payload = json.loads(json.dumps(result_to_payload(result)))
        clone = result_from_payload(payload, "gru", GP102)
        assert clone.total_cycles == result.total_cycles
        assert clone.cycles_by_category() == result.cycles_by_category()
        for ka, kb in zip(result.kernels, clone.kernels):
            assert ka.stats.to_dict() == kb.stats.to_dict()
            assert ka.kernel.signature() == kb.kernel.signature()

    def test_single_store_holds_both_granularities(self, tmp_path):
        store = ResultStore(tmp_path)
        Executor(store).run(RunSpec("gru", GP102, LIGHT))
        stats = cache_stats(tmp_path)
        assert stats["kernel_entries"] > 0
        assert stats["run_entries"] == 1
        assert stats["entries"] == stats["kernel_entries"] + stats["run_entries"]
        assert stats["bytes"] > 0

    def test_stats_break_down_by_engine(self, tmp_path):
        Executor(ResultStore(tmp_path)).run(RunSpec("gru", GP102, LIGHT))
        (tmp_path / "stale000.json").write_text(
            json.dumps({"engine": "old-engine", "stats": {}})
        )
        stats = cache_stats(tmp_path)
        by_engine = stats["by_engine"]
        assert set(by_engine) == {stats["engine_version"], "old-engine"}
        assert by_engine["old-engine"]["entries"] == 1
        assert by_engine["old-engine"]["bytes"] > 0
        live = by_engine[stats["engine_version"]]
        assert live["entries"] == stats["entries"] - 1
        assert sum(b["bytes"] for b in by_engine.values()) == stats["bytes"]

    def test_clear_by_engine_prunes_only_that_engine(self, tmp_path):
        Executor(ResultStore(tmp_path)).run(RunSpec("gru", GP102, LIGHT))
        before = cache_stats(tmp_path)
        (tmp_path / "stale000.json").write_text(
            json.dumps({"engine": "old-engine", "stats": {}})
        )
        removed = clear_cache(tmp_path, engine="old-engine")
        assert removed == 1
        after = cache_stats(tmp_path)
        assert "old-engine" not in after["by_engine"]
        assert after["entries"] == before["entries"]
        # the surviving entries are still valid warm hits
        rerun = Executor(ResultStore(tmp_path)).execute(
            [RunSpec("gru", GP102, LIGHT)]
        )
        assert rerun.fresh == 0

    def test_clear_covers_runs_and_legacy_dir(self, tmp_path, monkeypatch):
        # The pre-unification .tango_cache lived in the working directory.
        monkeypatch.chdir(tmp_path)
        store = ResultStore(tmp_path)
        Executor(store).run(RunSpec("gru", GP102, LIGHT))
        legacy = tmp_path / store_mod.LEGACY_TANGO_DIR
        legacy.mkdir()
        (legacy / "stale.json").write_text("{}")
        assert cache_stats(tmp_path)["legacy_tango_entries"] == 1
        removed = clear_cache(tmp_path)
        assert removed > 0
        assert not legacy.exists()
        assert cache_stats(tmp_path)["entries"] == 0

    def test_corrupt_run_entry_reads_as_miss(self, tmp_path):
        spec = RunSpec("gru", GP102, LIGHT)
        store = ResultStore(tmp_path)
        Executor(store).run(spec)
        store.run_path(spec).write_text("{broken")
        reread = ResultStore(tmp_path)
        assert reread.get_run(spec) is None
        result = Executor(reread).run(spec)
        assert result.total_cycles > 0

    def test_engine_bump_misses_stale_run(self, tmp_path, monkeypatch):
        import repro.gpu.vector as vector

        spec = RunSpec("gru", GP102, LIGHT)
        Executor(ResultStore(tmp_path)).run(spec)
        monkeypatch.setattr(vector, "ENGINE_VERSION", "test-engine")
        assert ResultStore(tmp_path).get_run(spec) is None
