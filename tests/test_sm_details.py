"""White-box tests of the SM issue loop using tiny synthetic kernels.

Each test constructs a minimal thread program that can stall for exactly
one reason and checks the simulator attributes it correctly — the unit
of trust behind the Figure 7 stall taxonomy.
"""

from __future__ import annotations

import pytest

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.simulator import simulate_kernel
from repro.isa.dtypes import DType
from repro.isa.instruction import Instruction, MemSpace
from repro.isa.opcodes import Op
from repro.isa.program import Loop, Program
from repro.isa.registers import RegisterAllocator
from repro.kernels.addressing import AddrExpr, Term
from repro.kernels.launch import KernelLaunch
from repro.profiling.stall import StallReason


def _gpu(**overrides) -> GpuConfig:
    base = dict(
        name="Tiny",
        num_sms=1,
        cores_per_sm=128,
        clock_ghz=1.0,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        shared_mem_per_sm=96 * 1024,
        l1_size=16 * 1024,
        l2_size=256 * 1024,
        dram_gb_per_s=100.0,
        launch_overhead_cycles=0,
    )
    base.update(overrides)
    return GpuConfig(**base)


def _kernel(items, ra, *, block=(64, 1, 1), grid=(1, 1, 1), name="k") -> KernelLaunch:
    program = Program(items=tuple(items), reg_count=ra.count, entry_regs=ra.specials)
    return KernelLaunch(
        name=name,
        node_name=name,
        category="Test",
        grid=grid,
        block=block,
        program=program,
        regs=max(1, ra.count),
        smem_bytes=32,
        cmem_bytes=16,
        active_threads=block[0] * block[1] * block[2],
    )


def _stalls(kernel, config=None, options=None):
    result = simulate_kernel(kernel, config or _gpu(), options or SimOptions())
    return result.stats.stall_fractions(), result


class TestStallAttribution:
    def test_exec_dependency_from_alu_chain(self):
        ra = RegisterAllocator()
        acc = ra.fresh()
        body = (
            # Long serial SFU chain: each op depends on the previous.
            Instruction(Op.RSQRT, DType.F32, dst=acc, srcs=(acc,)),
        )
        kernel = _kernel(
            [Instruction(Op.MOV, DType.F32, dst=acc), Loop("i", 64, body),
             Instruction(Op.EXIT)], ra,
        )
        fractions, _ = _stalls(kernel)
        assert fractions.get(StallReason.EXEC_DEPENDENCY, 0) > 0.3

    def test_memory_dependency_from_load_use(self):
        ra = RegisterAllocator()
        value = ra.fresh()
        out = ra.fresh()
        addr = AddrExpr(1 << 30, (Term("i", 4096), Term("lin_tid", 4)))
        body = (
            Instruction(Op.LD, DType.F32, dst=value, space=MemSpace.GLOBAL, addr=addr),
            Instruction(Op.ADD, DType.F32, dst=out, srcs=(value, out)),
        )
        kernel = _kernel(
            [Instruction(Op.MOV, DType.F32, dst=out), Loop("i", 64, body),
             Instruction(Op.EXIT)], ra,
        )
        fractions, _ = _stalls(kernel)
        assert fractions.get(StallReason.MEMORY_DEPENDENCY, 0) > 0.3

    def test_memory_throttle_from_uncoalesced_streams(self):
        ra = RegisterAllocator()
        value = ra.fresh()
        out = ra.fresh()
        # Every lane on its own 4KB-strided row, new line every iteration:
        # 32 transactions per warp load against a tiny MSHR file.
        addr = AddrExpr(1 << 30, (Term("lin_tid", 4096), Term("i", 128)))
        body = (
            Instruction(Op.LD, DType.F32, dst=value, space=MemSpace.GLOBAL, addr=addr),
            Instruction(Op.ADD, DType.F32, dst=out, srcs=(value, out)),
        )
        kernel = _kernel(
            [Instruction(Op.MOV, DType.F32, dst=out), Loop("i", 64, body),
             Instruction(Op.EXIT)], ra, block=(256, 1, 1),
        )
        fractions, _ = _stalls(kernel, _gpu(mshr_entries=8, l1_size=0))
        assert fractions.get(StallReason.MEMORY_THROTTLE, 0) > 0.05

    def test_pipe_busy_from_fpu_pressure(self):
        ra = RegisterAllocator()
        # Many warps of independent FPU work with no dependencies: the
        # only thing stopping dual issue is the FPU port.
        regs = [ra.fresh() for _ in range(8)]
        body = tuple(
            Instruction(Op.MUL, DType.F32, dst=r) for r in regs
        )
        kernel = _kernel(
            [Loop("i", 32, body), Instruction(Op.EXIT)], ra, block=(512, 1, 1),
        )
        fractions, _ = _stalls(kernel)
        assert fractions.get(StallReason.PIPE_BUSY, 0) > 0.2

    def test_sync_from_barrier(self):
        ra = RegisterAllocator()
        slow = ra.fresh()
        items = [
            # Warp-id-dependent latency before the barrier would need
            # divergence; instead a serial chain delays everyone, and the
            # barrier turns the tail into sync stalls.
            Instruction(Op.MOV, DType.F32, dst=slow),
            Loop("i", 16, (Instruction(Op.RSQRT, DType.F32, dst=slow, srcs=(slow,)),)),
            Instruction(Op.BAR, DType.NONE),
            Instruction(Op.EXIT),
        ]
        kernel = _kernel(items, ra, block=(256, 1, 1))
        fractions, result = _stalls(kernel)
        assert StallReason.SYNC in result.stats.stalls

    def test_constant_dependency_from_cold_const(self):
        ra = RegisterAllocator()
        dim = ra.fresh()
        use = ra.fresh()
        items = [
            Instruction(Op.LD, DType.U32, dst=dim, space=MemSpace.CONST),
            Instruction(Op.ADD, DType.U32, dst=use, srcs=(dim,)),
            Instruction(Op.EXIT),
        ]
        kernel = _kernel(items, ra)
        _, result = _stalls(kernel)
        assert result.stats.const_accesses > 0

    def test_inst_fetch_bubbles_recorded(self):
        ra = RegisterAllocator()
        regs = [ra.fresh() for _ in range(4)]
        body = tuple(Instruction(Op.ADD, DType.U32, dst=r) for r in regs)
        kernel = _kernel([Loop("i", 64, body), Instruction(Op.EXIT)], ra)
        _, result = _stalls(kernel)
        assert result.stats.stalls.get(StallReason.INST_FETCH, 0) > 0


class TestScalingArithmetic:
    def test_waves_counted(self):
        ra = RegisterAllocator()
        r = ra.fresh()
        kernel = _kernel(
            [Instruction(Op.ADD, DType.U32, dst=r), Instruction(Op.EXIT)],
            ra, block=(1024, 1, 1), grid=(8, 1, 1),
        )
        # 1024-thread blocks, 2048 threads/SM, 1 SM -> 2 resident -> 4 waves.
        result = simulate_kernel(kernel, _gpu())
        assert result.stats.waves == 4

    def test_launch_overhead_added(self):
        ra = RegisterAllocator()
        r = ra.fresh()
        kernel = _kernel(
            [Instruction(Op.ADD, DType.U32, dst=r), Instruction(Op.EXIT)], ra
        )
        with_overhead = simulate_kernel(kernel, _gpu(launch_overhead_cycles=5000))
        without = simulate_kernel(kernel, _gpu(launch_overhead_cycles=0))
        assert with_overhead.stats.cycles == pytest.approx(
            without.stats.cycles + 5000
        )

    def test_block_factor_scales_events(self):
        ra = RegisterAllocator()
        r = ra.fresh()
        items = [Instruction(Op.ADD, DType.U32, dst=r), Instruction(Op.EXIT)]
        small = simulate_kernel(_kernel(items, ra, grid=(2, 1, 1)), _gpu())
        # Same kernel, 4x the grid: 4x the (scaled) issued instructions.
        big = simulate_kernel(_kernel(items, ra, grid=(8, 1, 1)), _gpu())
        assert big.stats.issued == pytest.approx(4 * small.stats.issued, rel=0.01)
