"""Fast SM engine vs the frozen seed engine: bit-identical results.

The event-heap issue loop in :mod:`repro.gpu.sm` is an optimization of
the seed engine's per-cycle warp scan (:mod:`repro.gpu.seed_engine`),
not a remodel: every KernelStats field must match exactly — cycles,
per-pipe issue counts, sampled stall attribution, cache/DRAM traffic
and register-file activity.  These tests pin that contract, per
scheduler, and pin that persistent-cache hits reproduce fresh
simulations exactly.

The light-options cases run in tier-1; the full-fidelity sweep over all
seven networks is ``slow`` (``pytest -m slow``).
"""

from __future__ import annotations

import pytest

from repro.gpu import seed_engine
from repro.gpu.config import SimOptions
from repro.gpu.simulator import simulate_network
from repro.runs.store import KernelResultCache
from repro.platforms import GK210, GP102

from repro.core.suite import NETWORK_ORDER


def _assert_identical(a, b) -> None:
    assert len(a.kernels) == len(b.kernels)
    for ka, kb in zip(a.kernels, b.kernels):
        assert ka.stats.__dict__ == kb.stats.__dict__, ka.kernel.name


class TestLightEquivalence:
    @pytest.mark.parametrize("scheduler", ["gto", "lrr", "tlv"])
    @pytest.mark.parametrize("network", ["gru", "cifarnet"])
    def test_matches_seed_engine(self, network, scheduler):
        options = SimOptions(scheduler=scheduler).light()
        seed = seed_engine.simulate_network(network, GP102, options)
        fast = simulate_network(network, GP102, options)
        _assert_identical(seed, fast)

    def test_matches_seed_engine_gk210(self):
        options = SimOptions().light()
        seed = seed_engine.simulate_network("squeezenet", GK210, options)
        fast = simulate_network("squeezenet", GK210, options)
        _assert_identical(seed, fast)


class TestCacheEquivalence:
    def test_warm_cache_identical_to_fresh(self, tmp_path):
        options = SimOptions().light()
        fresh = simulate_network("cifarnet", GP102, options)
        populate = KernelResultCache(tmp_path)
        simulate_network("cifarnet", GP102, options, cache=populate)
        assert populate.stores > 0
        warm = KernelResultCache(tmp_path)
        result = simulate_network("cifarnet", GP102, options, cache=warm)
        assert warm.hits == populate.stores and warm.misses == 0
        _assert_identical(fresh, result)
        for ka, kb in zip(fresh.kernels, result.kernels):
            assert ka.occupancy == kb.occupancy
            assert ka.sample_factor == kb.sample_factor
            assert ka.block_factor == kb.block_factor

    def test_memory_layer_hits_identical(self, tmp_path):
        options = SimOptions().light()
        cache = KernelResultCache(tmp_path)
        first = simulate_network("gru", GP102, options, cache=cache)
        second = simulate_network("gru", GP102, options, cache=cache)
        _assert_identical(first, second)
        # Hits hand out fresh stats objects, never aliases.
        assert first.kernels[0].stats is not second.kernels[0].stats


class TestDedupEquivalence:
    """The canonical-signature dedup gate: replicating a simulated
    kernel's stats onto signature-identical launches must be
    *bit-identical* to simulating every launch from scratch."""

    @pytest.mark.parametrize("network", NETWORK_ORDER)
    def test_dedup_on_matches_dedup_off(self, network):
        options = SimOptions().light()
        off = simulate_network(network, GP102, options, dedup=False)
        on = simulate_network(network, GP102, options, dedup=True)
        _assert_identical(off, on)
        assert off.unique_kernels == on.unique_kernels
        assert on.unique_kernels <= len(on.kernels)

    def test_unique_kernel_count_is_signature_count(self):
        result = simulate_network("resnet", GP102, SimOptions().light())
        sigs = {k.kernel.signature() for k in result.kernels}
        assert result.unique_kernels == len(sigs)
        # ResNet repeats its residual blocks — dedup must actually bite.
        assert result.unique_kernels < len(result.kernels)


@pytest.mark.slow
@pytest.mark.parametrize("network", NETWORK_ORDER)
class TestFullFidelityEquivalence:
    def test_matches_seed_engine(self, network):
        options = SimOptions()
        seed = seed_engine.simulate_network(network, GP102, options)
        fast = simulate_network(network, GP102, options)
        _assert_identical(seed, fast)

    def test_dedup_on_matches_dedup_off_full(self, network):
        options = SimOptions()
        off = simulate_network(network, GP102, options, dedup=False)
        on = simulate_network(network, GP102, options, dedup=True)
        _assert_identical(off, on)
