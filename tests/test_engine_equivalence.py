"""Optimized engines vs the frozen seed engine: bit-identical results.

The event-heap issue loop in :mod:`repro.gpu.sm` (the ``fast`` engine)
and its numpy-vectorized extension in :mod:`repro.gpu.vector` (the
``vector`` engine, the default) are optimizations of the seed engine's
per-cycle warp scan (:mod:`repro.gpu.seed_engine`), not remodels:
every KernelStats field must match exactly — cycles, per-pipe issue
counts, sampled stall attribution, cache/DRAM traffic and
register-file activity.  These tests pin that contract for *both*
engines, per scheduler, and pin that persistent-cache hits reproduce
fresh simulations exactly.

The light-options cases run in tier-1; the full-fidelity sweep over all
seven networks is ``slow`` (``pytest -m slow``).
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

from repro.gpu import engine as engine_registry
from repro.gpu import seed_engine
from repro.gpu.config import SimOptions
from repro.gpu.simulator import simulate_network
from repro.runs.store import KernelResultCache
from repro.platforms import GK210, GP102

from repro.core.suite import NETWORK_ORDER

#: The optimized engines under test (the seed engine is the oracle).
FAST_ENGINES = ("fast", "vector")


@contextmanager
def forced_engine(name: str):
    engine_registry.set_engine(name)
    try:
        yield
    finally:
        engine_registry.set_engine(None)


def _assert_identical(a, b) -> None:
    assert len(a.kernels) == len(b.kernels)
    for ka, kb in zip(a.kernels, b.kernels):
        assert ka.stats.__dict__ == kb.stats.__dict__, ka.kernel.name


class TestLightEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("scheduler", ["gto", "lrr", "tlv"])
    @pytest.mark.parametrize("network", ["gru", "cifarnet"])
    def test_matches_seed_engine(self, network, scheduler, engine):
        options = SimOptions(scheduler=scheduler).light()
        seed = seed_engine.simulate_network(network, GP102, options)
        with forced_engine(engine):
            fast = simulate_network(network, GP102, options)
        _assert_identical(seed, fast)

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_matches_seed_engine_gk210(self, engine):
        options = SimOptions().light()
        seed = seed_engine.simulate_network("squeezenet", GK210, options)
        with forced_engine(engine):
            fast = simulate_network("squeezenet", GK210, options)
        _assert_identical(seed, fast)

    def test_fast_and_vector_agree(self):
        # Transitivity check at a config the seed sweep above skips.
        options = SimOptions(scheduler="tlv").light()
        with forced_engine("fast"):
            fast = simulate_network("squeezenet", GK210, options)
        with forced_engine("vector"):
            vec = simulate_network("squeezenet", GK210, options)
        _assert_identical(fast, vec)


class TestCacheEquivalence:
    def test_warm_cache_identical_to_fresh(self, tmp_path):
        options = SimOptions().light()
        fresh = simulate_network("cifarnet", GP102, options)
        populate = KernelResultCache(tmp_path)
        simulate_network("cifarnet", GP102, options, cache=populate)
        assert populate.stores > 0
        warm = KernelResultCache(tmp_path)
        result = simulate_network("cifarnet", GP102, options, cache=warm)
        assert warm.hits == populate.stores and warm.misses == 0
        _assert_identical(fresh, result)
        for ka, kb in zip(fresh.kernels, result.kernels):
            assert ka.occupancy == kb.occupancy
            assert ka.sample_factor == kb.sample_factor
            assert ka.block_factor == kb.block_factor

    def test_memory_layer_hits_identical(self, tmp_path):
        options = SimOptions().light()
        cache = KernelResultCache(tmp_path)
        first = simulate_network("gru", GP102, options, cache=cache)
        second = simulate_network("gru", GP102, options, cache=cache)
        _assert_identical(first, second)
        # Hits hand out fresh stats objects, never aliases.
        assert first.kernels[0].stats is not second.kernels[0].stats

    def test_engines_never_share_cache_entries(self, tmp_path):
        # The same directory serves both engines without aliasing:
        # engine_version() is folded into every cache key.
        options = SimOptions().light()
        cache = KernelResultCache(tmp_path)
        with forced_engine("fast"):
            simulate_network("gru", GP102, options, cache=cache)
        stores_fast = cache.stores
        with forced_engine("vector"):
            result = simulate_network("gru", GP102, options, cache=cache)
        assert cache.stores == 2 * stores_fast and cache.hits == 0
        assert result.kernels


class TestDedupEquivalence:
    """The canonical-signature dedup gate: replicating a simulated
    kernel's stats onto signature-identical launches must be
    *bit-identical* to simulating every launch from scratch — under
    every optimized engine."""

    @pytest.mark.parametrize("network", NETWORK_ORDER)
    def test_dedup_on_matches_dedup_off(self, network):
        options = SimOptions().light()
        off = simulate_network(network, GP102, options, dedup=False)
        on = simulate_network(network, GP102, options, dedup=True)
        _assert_identical(off, on)
        assert off.unique_kernels == on.unique_kernels
        assert on.unique_kernels <= len(on.kernels)

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_dedup_cross_engine_matches_seed(self, engine):
        # Dedup x engine: the seed oracle (which always dedups at the
        # signature level) must agree with each optimized engine both
        # with and without the dedup gate.
        options = SimOptions().light()
        seed = seed_engine.simulate_network("resnet", GP102, options)
        with forced_engine(engine):
            on = simulate_network("resnet", GP102, options, dedup=True)
            off = simulate_network("resnet", GP102, options, dedup=False)
        _assert_identical(seed, on)
        _assert_identical(seed, off)

    def test_unique_kernel_count_is_signature_count(self):
        result = simulate_network("resnet", GP102, SimOptions().light())
        sigs = {k.kernel.signature() for k in result.kernels}
        assert result.unique_kernels == len(sigs)
        # ResNet repeats its residual blocks — dedup must actually bite.
        assert result.unique_kernels < len(result.kernels)


@pytest.mark.slow
@pytest.mark.parametrize("network", NETWORK_ORDER)
class TestFullFidelityEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_matches_seed_engine(self, network, engine):
        options = SimOptions()
        seed = seed_engine.simulate_network(network, GP102, options)
        with forced_engine(engine):
            fast = simulate_network(network, GP102, options)
        _assert_identical(seed, fast)

    def test_dedup_on_matches_dedup_off_full(self, network):
        options = SimOptions()
        off = simulate_network(network, GP102, options, dedup=False)
        on = simulate_network(network, GP102, options, dedup=True)
        _assert_identical(off, on)
