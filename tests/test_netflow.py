"""Tests for the inter-kernel dataflow verifier (:mod:`repro.analysis.netflow`).

Synthetic launch sequences plant each defect class — a read of a tensor
nothing wrote, a write nothing consumes, cross-node WAW/WAR overlaps,
producer/consumer extent disagreement — and assert the right code,
severity and launch attribution.  The benign patterns the suite relies
on (weights and graph inputs are externally initialised, recurrent
launches rewrite their own state, concat nodes are zero-copy views) must
stay clean, and the real seven-network suite must lint clean end to end.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, analyze_network_flow
from repro.analysis.netflow import (
    GRAPH_INPUT,
    check_network_flow,
    launch_flow,
    region_tensor,
)
from repro.core.suite import NETWORK_ORDER
from repro.isa.dtypes import DType
from repro.isa.instruction import Instruction, MemSpace
from repro.isa.opcodes import Op
from repro.isa.program import Loop, Program
from repro.isa.registers import RegisterAllocator
from repro.kernels.addressing import AddrExpr, Term
from repro.kernels.launch import KernelLaunch, MemRegion

#: Canonical slot bases, as repro.kernels.memory_layout places them.
IN_BASE = 1 << 30
WEIGHT_BASE = 2 << 30
OUT_BASE = 3 << 30


def make_launch(name, node, items, regions, reg_count=4):
    return KernelLaunch(
        name=name,
        node_name=node,
        category="Conv",
        grid=(1, 1, 1),
        block=(32, 1, 1),
        program=Program(items=tuple(items), reg_count=reg_count),
        regs=reg_count,
        smem_bytes=0,
        cmem_bytes=0,
        active_threads=32,
        regions=tuple(regions),
    )


def load(dst, base, span_threads=32):
    """A global load covering ``4 * span_threads`` bytes from *base*."""
    return Instruction(
        Op.LD, DType.F32, dst=dst,
        space=MemSpace.GLOBAL,
        addr=AddrExpr(base, (Term("lin_tid", 4),)),
    )


def store(src, base):
    return Instruction(
        Op.ST, DType.F32, srcs=(src,),
        space=MemSpace.GLOBAL,
        addr=AddrExpr(base, (Term("lin_tid", 4),)),
    )


def producer_consumer(consumer_reads=IN_BASE):
    """A two-launch chain: ``a`` writes its output, ``b`` reads it."""
    ra = RegisterAllocator()
    r = ra.fresh()
    a = make_launch(
        "A 1", "a",
        [load(r, IN_BASE), store(r, OUT_BASE)],
        [MemRegion("in", IN_BASE, 128), MemRegion("out", OUT_BASE, 128)],
        reg_count=ra.count,
    )
    b = make_launch(
        "B 1", "b",
        [load(r, consumer_reads), store(r, OUT_BASE)],
        [MemRegion("in", IN_BASE, 128), MemRegion("out", OUT_BASE, 128)],
        reg_count=ra.count,
    )
    return a, b


NODE_INPUTS = {"a": ("input",), "b": ("a",), "c": ("b",)}


def run(launches, node_inputs=NODE_INPUTS, output="b"):
    return check_network_flow(list(launches), dict(node_inputs), output)


def codes(diags, severity=None):
    return {
        d.code for d in diags if severity is None or d.severity is severity
    }


class TestRegionTensor:
    def test_slot_roles(self):
        a, _ = producer_consumer()
        assert region_tensor(a, a.regions[0], ("input",)) == (GRAPH_INPUT, "external")
        assert region_tensor(a, a.regions[1], ("input",)) == ("a", "activation")
        weight = MemRegion("weight", WEIGHT_BASE, 64)
        assert region_tensor(a, weight, ("input",)) == ("a.weight", "param")

    def test_indexed_inputs(self):
        a, _ = producer_consumer()
        r0 = MemRegion("in0", IN_BASE, 64)
        r1 = MemRegion("in1", IN_BASE + (1 << 20), 64)
        assert region_tensor(a, r0, ("x", "y"))[0] == "x"
        assert region_tensor(a, r1, ("x", "y"))[0] == "y"


class TestLaunchFlow:
    def test_footprint_is_region_relative(self):
        a, _ = producer_consumer()
        accesses = launch_flow(a, ("input",))
        by_key = {(acc.tensor, acc.is_write): acc for acc in accesses}
        write = by_key[("a", True)]
        assert write.spans[0].lo == 0 and write.spans[0].hi == 127
        read = by_key[(GRAPH_INPUT, False)]
        assert read.spans[0].lo == 0

    def test_zero_trip_loop_body_is_skipped(self):
        ra = RegisterAllocator()
        r = ra.fresh()
        items = [
            Loop("k", 0, (load(r, IN_BASE),)),
            store(r, OUT_BASE),
        ]
        launch = make_launch(
            "Z 1", "a", items,
            [MemRegion("in", IN_BASE, 128), MemRegion("out", OUT_BASE, 128)],
            reg_count=ra.count,
        )
        accesses = launch_flow(launch, ("input",))
        assert all(acc.is_write for acc in accesses)


class TestDiagnostics:
    def test_clean_chain_has_no_findings(self):
        a, b = producer_consumer()
        assert run([a, b]) == []

    def test_undefined_read_is_error(self):
        _, b = producer_consumer()
        diags = run([b])
        assert codes(diags, Severity.ERROR) == {"netflow-undefined-read"}
        [diag] = [d for d in diags if d.code == "netflow-undefined-read"]
        assert diag.kernel == "B 1"
        assert diag.data["tensor"] == "a"

    def test_dead_write_is_warning(self):
        a, b = producer_consumer()
        # b's output is NOT the network output and nothing reads it.
        diags = run([a, b], output="c-final")
        assert codes(diags, Severity.WARNING) == {"netflow-dead-write"}
        [diag] = [d for d in diags if d.code == "netflow-dead-write"]
        assert diag.kernel == "B 1"

    def test_network_output_write_is_not_dead(self):
        a, b = producer_consumer()
        assert "netflow-dead-write" not in codes(run([a, b], output="b"))

    def test_recurrent_self_read_is_note_then_clean(self):
        ra = RegisterAllocator()
        r = ra.fresh()
        regions = [MemRegion("h_out", OUT_BASE, 128)]
        step = lambda tag: make_launch(
            f"RNN (t={tag})", "rnn",
            [load(r, OUT_BASE), store(r, OUT_BASE)],
            regions, reg_count=ra.count,
        )
        diags = check_network_flow(
            [step(0), step(1)], {"rnn": ("input",)}, "rnn"
        )
        assert codes(diags) == {"netflow-recurrent-init"}
        [note] = diags
        assert note.severity is Severity.NOTE
        assert note.kernel == "RNN (t=0)"

    def test_rnn_timestep_rewrite_is_not_dead(self):
        ra = RegisterAllocator()
        r = ra.fresh()
        regions = [MemRegion("h_out", OUT_BASE, 128)]
        steps = [
            make_launch(
                f"RNN (t={t})", "rnn", [store(r, OUT_BASE)],
                regions, reg_count=ra.count,
            )
            for t in range(3)
        ]
        diags = check_network_flow(list(steps), {"rnn": ("input",)}, "rnn")
        # t=0 and t=1 writes are overwritten by the same node; t=2 is
        # the network output.
        assert "netflow-dead-write" not in codes(diags)

    def test_cross_node_waw_is_warning(self):
        a, b = producer_consumer()
        # c also writes tensor "b"'s... simulate by giving c an output
        # region mapping to its own tensor but overlapping b via a
        # shared input write: instead, two nodes writing one tensor is
        # modelled through a virtual view below; here use node c
        # writing into its declared *input* region (an in-place op on
        # b's tensor).
        ra = RegisterAllocator()
        r = ra.fresh()
        c = make_launch(
            "C 1", "c",
            [store(r, IN_BASE)],
            [MemRegion("in", IN_BASE, 128)],
            reg_count=ra.count,
        )
        diags = run([a, b, c], output="b")
        assert "netflow-waw" in codes(diags, Severity.WARNING)

    def test_cross_node_war_is_warning(self):
        a, b = producer_consumer()
        ra = RegisterAllocator()
        r = ra.fresh()
        # c writes tensor "a" (its declared input) after b read it.
        c = make_launch(
            "C 1", "c",
            [store(r, IN_BASE)],
            [MemRegion("in", IN_BASE, 128)],
            reg_count=ra.count,
        )
        diags = check_network_flow(
            [a, b, c], {"a": ("input",), "b": ("a",), "c": ("a",)}, "b"
        )
        assert "netflow-war" in codes(diags, Severity.WARNING)

    def test_size_mismatch_is_warning(self):
        a, b = producer_consumer()
        ra = RegisterAllocator()
        r = ra.fresh()
        b_small = make_launch(
            "B 1", "b",
            [load(r, IN_BASE), store(r, OUT_BASE)],
            [MemRegion("in", IN_BASE, 64), MemRegion("out", OUT_BASE, 128)],
            reg_count=ra.count,
        )
        diags = run([a, b_small])
        assert "netflow-size-mismatch" in codes(diags, Severity.WARNING)

    def test_virtual_view_resolves_to_constituents(self):
        # Two producers, a virtual concat node, one consumer reading
        # the view: no undefined reads, no dead writes.
        ra = RegisterAllocator()
        r = ra.fresh()
        mk = lambda name: make_launch(
            f"{name} 1", name, [store(r, OUT_BASE)],
            [MemRegion("out", OUT_BASE, 128)], reg_count=ra.count,
        )
        p1, p2 = mk("p1"), mk("p2")
        consumer = make_launch(
            "D 1", "d",
            [load(r, IN_BASE), store(r, OUT_BASE)],
            [MemRegion("in", IN_BASE, 256), MemRegion("out", OUT_BASE, 64)],
            reg_count=ra.count,
        )
        node_inputs = {
            "p1": ("input",), "p2": ("input",),
            "cat": ("p1", "p2"), "d": ("cat",),
        }
        diags = check_network_flow(
            [p1, p2, consumer], node_inputs, "d", view_nodes={"cat"}
        )
        assert diags == []

    def test_unlaunched_non_view_node_is_a_hole(self):
        # A launch-less node that is NOT a declared view must not be
        # silently resolved through: its consumer reads a tensor no
        # launch produced.
        _, b = producer_consumer()
        diags = check_network_flow(
            [b], dict(NODE_INPUTS), "b", view_nodes=frozenset()
        )
        assert codes(diags, Severity.ERROR) == {"netflow-undefined-read"}


class TestSuiteCleanliness:
    @pytest.mark.parametrize("network", NETWORK_ORDER)
    def test_paper_networks_flow_clean(self, network):
        report = analyze_network_flow(network)
        assert not report.has_errors, report.format(min_severity=Severity.ERROR)
        assert report.count(Severity.WARNING) == 0, report.format()
