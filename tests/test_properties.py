"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layers import functional as F
from repro.isa.program import sample_trips
from repro.kernels.addressing import AddrExpr, Term
from repro.memory.cache import Cache
from repro.memory.coalescer import TRANSACTION_BYTES, coalesce
from repro.memory.dram import Dram
from repro.memory.mshr import MshrFile


class TestCoalescerProperties:
    @given(
        addrs=st.lists(st.integers(0, 2**30), min_size=1, max_size=32),
        width=st.sampled_from([1, 4, 8, 16]),
    )
    def test_transaction_count_bounded(self, addrs, width):
        txs = coalesce(np.array(addrs, dtype=np.int64), width)
        # Never more than two transactions per lane (straddle case).
        assert 1 <= len(txs) <= 2 * len(addrs)

    @given(addrs=st.lists(st.integers(0, 2**30), min_size=1, max_size=32))
    def test_transactions_cover_every_lane(self, addrs):
        txs = set(coalesce(np.array(addrs, dtype=np.int64), 4))
        for addr in addrs:
            assert (addr // TRANSACTION_BYTES) * TRANSACTION_BYTES in txs

    @given(addrs=st.lists(st.integers(0, 2**30), min_size=1, max_size=32))
    def test_result_sorted_and_unique(self, addrs):
        txs = coalesce(np.array(addrs, dtype=np.int64), 4)
        assert list(txs) == sorted(set(txs))


class TestCacheProperties:
    @given(
        accesses=st.lists(st.integers(0, 2**20), min_size=1, max_size=200),
        size_kb=st.sampled_from([0, 1, 16, 64]),
    )
    def test_accounting_identity(self, accesses, size_kb):
        cache = Cache("p", size_kb * 1024)
        for addr in accesses:
            cache.access(addr)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(accesses)

    @given(accesses=st.lists(st.integers(0, 2**20), min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, accesses):
        cache = Cache("p", 2048, line_bytes=128, assoc=4)
        for addr in accesses:
            cache.access(addr)
        assert cache.resident_lines() <= 2048 // 128

    @given(accesses=st.lists(st.integers(0, 2**16), min_size=2, max_size=100))
    def test_immediate_rereference_hits(self, accesses):
        cache = Cache("p", 64 * 1024)
        for addr in accesses:
            cache.access(addr)
            assert cache.access(addr) is True  # temporal locality always hits

    @given(
        accesses=st.lists(st.integers(0, 2**20), min_size=1, max_size=100),
    )
    def test_bigger_cache_never_hits_less(self, accesses):
        small = Cache("s", 4 * 1024)
        big = Cache("b", 64 * 1024)
        # LRU inclusion property holds within a single set geometry family
        # only statistically; check the aggregate instead.
        for addr in accesses:
            small.access(addr)
            big.access(addr)
        assert big.stats.hits >= small.stats.hits - len(accesses) * 0.25


class TestMshrProperties:
    @given(
        events=st.lists(
            st.tuples(st.integers(0, 50), st.integers(1, 400)), min_size=1, max_size=100
        )
    )
    def test_in_use_never_exceeds_capacity(self, events):
        mshr = MshrFile(entries=8, max_merges=4)
        now = 0
        for line, delay in events:
            now += 1
            mshr.reserve(line, now + delay, now)
            assert mshr.in_use <= 8

    @given(delays=st.lists(st.integers(1, 100), min_size=1, max_size=50))
    def test_drain_far_future_empties_file(self, delays):
        mshr = MshrFile(entries=64)
        for i, delay in enumerate(delays):
            mshr.reserve(i, delay, 0)
        mshr.drain(10**9)
        assert mshr.in_use == 0


class TestDramProperties:
    @given(sizes=st.lists(st.integers(1, 1024), min_size=1, max_size=50))
    def test_completions_monotonic_for_same_issue_time(self, sizes):
        dram = Dram(latency=10, bytes_per_cycle=4.0)
        completions = [dram.service(0, size) for size in sizes]
        assert completions == sorted(completions)

    @given(size=st.integers(1, 4096))
    def test_completion_after_latency(self, size):
        dram = Dram(latency=100, bytes_per_cycle=8.0)
        assert dram.service(0, size) >= 100


class TestSamplingProperties:
    @given(trips=st.integers(1, 100_000), budget=st.integers(1, 256))
    def test_weights_always_unbiased(self, trips, budget):
        picks = sample_trips(trips, budget)
        assert sum(w for _, w in picks) == pytest.approx(trips)
        assert len(picks) == min(trips, budget)

    @given(trips=st.integers(1, 100_000), budget=st.integers(1, 256))
    def test_indices_in_range_and_unique(self, trips, budget):
        picks = sample_trips(trips, budget)
        indices = [i for i, _ in picks]
        assert len(set(indices)) == len(indices)
        assert all(0 <= i < trips for i in indices)


class TestAddressingProperties:
    @given(
        base=st.integers(0, 2**30),
        coef=st.integers(-64, 64),
        div=st.integers(1, 16),
        mod=st.one_of(st.none(), st.integers(1, 16)),
        value=st.integers(0, 10_000),
    )
    def test_term_matches_reference_formula(self, base, coef, div, mod, value):
        term = Term("rc", coef, div=div, mod=mod)
        expr = AddrExpr(base, (term,))

        class W:
            width = 2
            lane_syms = {
                "tx": np.zeros(2, dtype=np.int64),
                "ty": np.zeros(2, dtype=np.int64),
                "tz": np.zeros(2, dtype=np.int64),
                "lin_tid": np.zeros(2, dtype=np.int64),
            }
            block_syms = {"bx": 0, "by": 0, "bz": 0, "lin_bid": 0, "one": 1}

        out = expr.evaluate(W(), {"rc": value})
        v = value // div
        if mod is not None:
            v %= mod
        assert (out == base + coef * v).all()


class TestFunctionalProperties:
    @given(
        data=st.lists(st.floats(-100, 100), min_size=2, max_size=64).map(np.array)
    )
    def test_softmax_always_distribution(self, data):
        p = F.softmax(data)
        assert p.sum() == pytest.approx(1.0, abs=1e-6)
        assert (p >= 0).all()

    @given(
        c=st.integers(1, 4), h=st.integers(3, 8), w=st.integers(3, 8),
        k=st.integers(1, 3), seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_conv_shape_formula(self, c, h, w, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(c, h, w))
        weight = rng.normal(size=(2, c, k, k))
        out = F.conv2d(x, weight, pad=k // 2)
        expected_h = (h + 2 * (k // 2) - k) + 1
        assert out.shape == (2, expected_h, (w + 2 * (k // 2) - k) + 1)

    @given(
        h=st.integers(4, 10), seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_max_pool_upper_bounds_avg_pool(self, h, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, h, h))
        assert (F.max_pool2d(x, 2, 2) >= F.avg_pool2d(x, 2, 2) - 1e-12).all()

    @given(seed=st.integers(0, 1000), scale=st.floats(0.1, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_relu_idempotent_and_scale_covariant(self, seed, scale):
        x = np.random.default_rng(seed).normal(size=32)
        np.testing.assert_allclose(F.relu(F.relu(x)), F.relu(x))
        np.testing.assert_allclose(F.relu(scale * x), scale * F.relu(x), rtol=1e-6)
