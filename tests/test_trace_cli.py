"""Tests for ``repro trace simulate|serve`` (Chrome-trace artifacts)."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import validate_chrome_trace


class TestTraceSimulate:
    def test_writes_valid_chrome_trace_with_kernel_spans(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "simulate", "gru", "--fidelity", "light",
                     "--no-cache", "--output", str(out)]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        kernels = [e for e in payload["traceEvents"]
                   if e.get("ph") == "X" and e.get("cat") == "kernel"]
        assert kernels
        assert payload["otherData"]["command"] == "trace simulate"
        assert payload["otherData"]["dropped_events"] == 0

    def test_refreshes_even_when_store_is_warm(self, capsys, tmp_path):
        cache = tmp_path / "store"
        out = tmp_path / "trace.json"
        args = ["trace", "simulate", "gru", "--light",
                "--cache-dir", str(cache), "--output", str(out)]
        assert main(args) == 0
        first = json.loads(out.read_text())
        assert main(args) == 0
        second = json.loads(out.read_text())
        # A warm store must not starve the trace of GPU spans.
        for payload in (first, second):
            assert any(e.get("cat") == "kernel"
                       for e in payload["traceEvents"])

    def test_no_warps_drops_stall_spans(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "simulate", "gru", "--light", "--no-cache",
                     "--no-warps", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert "kernel" in cats and "stall" not in cats

    def test_json_prints_payload_to_stdout(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "simulate", "gru", "--light", "--no-cache",
                     "--output", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out.read_text())

    def test_max_events_overflow_is_counted(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "simulate", "gru", "--light", "--no-cache",
                     "--max-events", "10", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["otherData"]["dropped_events"] > 0
        assert "dropped" in capsys.readouterr().out

    def test_unknown_network_exits_2(self, capsys, tmp_path):
        assert main(["trace", "simulate", "nope", "--no-cache",
                     "--output", str(tmp_path / "t.json")]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestTraceServe:
    def test_captures_all_three_layers(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "serve", "--networks", "gru",
                     "--devices", "tx1", "--requests", "40",
                     "--rps", "200", "--fidelity", "light", "--no-cache",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        cats = {e.get("cat") for e in payload["traceEvents"]
                if e.get("ph") in ("X", "i")}
        # GPU, executor and serving spans all present in one trace.
        assert "kernel" in cats
        assert "run" in cats
        assert "batch" in cats and "request" in cats
        counters = payload["metrics"]["counters"]
        assert counters["serve.completed"]["value"] > 0

    def test_bad_scheduler_exits_2(self, capsys, tmp_path):
        assert main(["trace", "serve", "--scheduler", "nope",
                     "--no-cache", "--output", str(tmp_path / "t.json")]) == 2
        assert "unknown scheduler" in capsys.readouterr().err
