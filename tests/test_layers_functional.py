"""Unit tests for the functional NumPy layer primitives."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal

from repro.core.layers import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestConv2d:
    def test_matches_scipy_correlate(self, rng):
        x = rng.normal(size=(3, 12, 14))
        w = rng.normal(size=(5, 3, 3, 3))
        out = F.conv2d(x, w, stride=1, pad=0)
        for oc in range(5):
            expected = sum(
                signal.correlate2d(x[c], w[oc, c], mode="valid") for c in range(3)
            )
            np.testing.assert_allclose(out[oc], expected, rtol=1e-5, atol=1e-6)

    def test_stride_subsamples(self, rng):
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        full = F.conv2d(x, w)
        strided = F.conv2d(x, w, stride=2)
        np.testing.assert_allclose(strided, full[:, ::2, ::2])

    def test_padding_preserves_spatial_size(self, rng):
        x = rng.normal(size=(2, 9, 9))
        w = rng.normal(size=(4, 2, 3, 3))
        out = F.conv2d(x, w, pad=1)
        assert out.shape == (4, 9, 9)

    def test_bias_adds_per_channel(self, rng):
        x = rng.normal(size=(1, 5, 5))
        w = rng.normal(size=(3, 1, 1, 1))
        bias = np.array([1.0, -2.0, 0.5])
        without = F.conv2d(x, w)
        with_bias = F.conv2d(x, w, bias=bias)
        np.testing.assert_allclose(
            with_bias - without,
            np.broadcast_to(bias[:, None, None], without.shape),
            rtol=1e-6,
        )

    def test_identity_kernel(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        w = np.ones((1, 1, 1, 1))
        np.testing.assert_allclose(F.conv2d(x, w), x)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(rng.normal(size=(2, 4, 4)), rng.normal(size=(1, 3, 3, 3)))

    def test_window_too_large_raises(self, rng):
        with pytest.raises(ValueError, match="does not fit"):
            F.conv2d(rng.normal(size=(1, 2, 2)), rng.normal(size=(1, 1, 5, 5)))


class TestPooling:
    def test_max_pool_simple(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        out = F.max_pool2d(x, kernel=2, stride=2)
        assert out.shape == (1, 1, 1)
        assert out[0, 0, 0] == 4.0

    def test_avg_pool_simple(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        out = F.avg_pool2d(x, kernel=2, stride=2)
        assert out[0, 0, 0] == pytest.approx(2.5)

    def test_max_pool_overlapping_windows(self, rng):
        x = rng.normal(size=(2, 6, 6))
        out = F.max_pool2d(x, kernel=3, stride=2)
        assert out.shape == (2, 2, 2)
        assert out[0, 0, 0] == x[0, :3, :3].max()
        assert out[1, 1, 1] == x[1, 2:5, 2:5].max()

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(7, 4, 4))
        np.testing.assert_allclose(F.global_avg_pool(x), x.mean(axis=(1, 2)))

    def test_max_pool_dominates_avg(self, rng):
        x = rng.normal(size=(1, 8, 8))
        assert (F.max_pool2d(x, 2, 2) >= F.avg_pool2d(x, 2, 2) - 1e-9).all()


class TestFullyConnectedAndActivations:
    def test_fc_matches_matmul(self, rng):
        x = rng.normal(size=(3, 4, 4))
        w = rng.normal(size=(10, 48))
        b = rng.normal(size=10)
        np.testing.assert_allclose(
            F.fully_connected(x, w, b), w @ x.reshape(-1) + b, rtol=1e-6
        )

    def test_fc_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="expects"):
            F.fully_connected(rng.normal(size=5), rng.normal(size=(3, 6)))

    def test_relu_zeroes_negatives(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(F.relu(x), [0.0, 0.0, 2.0])

    def test_softmax_is_distribution(self, rng):
        p = F.softmax(rng.normal(size=100))
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0).all()

    def test_softmax_shift_invariant(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), rtol=1e-6)

    def test_softmax_handles_large_scores(self):
        p = F.softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(p, [0.5, 0.5])

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.normal(size=50)
        s = F.sigmoid(x)
        assert ((s > 0) & (s < 1)).all()
        np.testing.assert_allclose(F.sigmoid(-x), 1 - s, rtol=1e-6)


class TestNormalization:
    def test_lrn_reduces_magnitude(self, rng):
        x = np.abs(rng.normal(size=(8, 5, 5))) + 0.1
        out = F.lrn(x)
        assert (np.abs(out) <= np.abs(x) + 1e-9).all()

    def test_lrn_preserves_shape_and_sign(self, rng):
        x = rng.normal(size=(16, 3, 3))
        out = F.lrn(x)
        assert out.shape == x.shape
        assert (np.sign(out) == np.sign(x)).all()

    def test_lrn_window_sums_channels(self):
        # With huge alpha the denominator is dominated by the window sum,
        # so a channel far from any energy passes through nearly intact.
        x = np.zeros((10, 1, 1))
        x[0] = 100.0
        x[9] = 1.0
        out = F.lrn(x, local_size=3, alpha=10.0, beta=1.0)
        assert out[9, 0, 0] == pytest.approx(1.0 / (1 + 10.0 / 3), rel=1e-3)

    def test_batch_norm_normalizes(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(4, 32, 32))
        mean = x.mean(axis=(1, 2))
        var = x.var(axis=(1, 2))
        out = F.batch_norm(x, mean, var)
        np.testing.assert_allclose(out.mean(axis=(1, 2)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=(1, 2)), 1.0, atol=1e-3)

    def test_scale_affine(self, rng):
        x = rng.normal(size=(3, 4, 4))
        gamma = np.array([1.0, 2.0, 0.5])
        beta = np.array([0.0, 1.0, -1.0])
        out = F.scale(x, gamma, beta)
        np.testing.assert_allclose(out[1], x[1] * 2.0 + 1.0, rtol=1e-6)

    def test_eltwise_add(self, rng):
        a = rng.normal(size=(2, 3, 3))
        b = rng.normal(size=(2, 3, 3))
        np.testing.assert_allclose(F.eltwise_add(a, b), a + b)

    def test_eltwise_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="shape"):
            F.eltwise_add(rng.normal(size=(2, 3, 3)), rng.normal(size=(2, 3, 4)))


class TestRecurrentCells:
    def _gru_weights(self, rng, h, i):
        return {
            f"{kind}_{gate}": rng.normal(size=(h, i if kind == "w" else h))
            if kind != "b"
            else rng.normal(size=h)
            for gate in ("z", "r", "h")
            for kind in ("w", "u", "b")
        }

    def test_gru_interpolates_between_old_and_candidate(self, rng):
        h = rng.normal(size=10)
        x = rng.normal(size=1)
        w = self._gru_weights(rng, 10, 1)
        out = F.gru_cell(
            x, h, w["w_z"], w["u_z"], w["b_z"], w["w_r"], w["u_r"], w["b_r"],
            w["w_h"], w["u_h"], w["b_h"],
        )
        # The new state is a convex combination of h and tanh-bounded
        # candidate, so it cannot exceed max(|h|, 1).
        assert (np.abs(out) <= np.maximum(np.abs(h), 1.0) + 1e-9).all()

    def test_lstm_cell_state_and_output_bounded(self, rng):
        h = np.zeros(8)
        c = np.zeros(8)
        x = rng.normal(size=1)
        mats = {
            f"{kind}_{gate}": rng.normal(size=(8, 1 if kind == "w" else 8))
            if kind != "b"
            else rng.normal(size=8)
            for gate in ("i", "f", "o", "g")
            for kind in ("w", "u", "b")
        }
        h1, c1 = F.lstm_cell(
            x, h, c,
            mats["w_i"], mats["u_i"], mats["b_i"],
            mats["w_f"], mats["u_f"], mats["b_f"],
            mats["w_o"], mats["u_o"], mats["b_o"],
            mats["w_g"], mats["u_g"], mats["b_g"],
        )
        # |c1| <= |c| + 1 (forget/input gates are in (0,1), g in (-1,1)).
        assert (np.abs(c1) <= np.abs(c) + 1.0 + 1e-9).all()
        assert (np.abs(h1) < 1.0).all()  # o * tanh(c) is inside (-1, 1)

    def test_lstm_forget_gate_decays_state(self):
        # With weights at zero, i = f = o = 0.5, g = 0: the cell halves.
        z = np.zeros((4, 4))
        zb = np.zeros(4)
        zi = np.zeros((4, 1))
        c = np.ones(4)
        _, c1 = F.lstm_cell(
            np.zeros(1), np.zeros(4), c, zi, z, zb, zi, z, zb, zi, z, zb, zi, z, zb
        )
        np.testing.assert_allclose(c1, 0.5 * np.ones(4))
