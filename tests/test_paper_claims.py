"""Fast integration tests of the paper's headline claims.

The full-fidelity versions run in the benchmark harness; these use light
sampling to keep the unit suite quick while still checking that each
claimed *mechanism* is present end to end.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.gpu import SimOptions, simulate_network
from repro.platforms import GK210, GP102, TX1
from repro.profiling.instmix import f32_fraction, opcode_mix
from repro.profiling.stall import StallReason


@pytest.fixture(scope="module")
def options():
    return SimOptions().light()


class TestObservation1:
    """Convolution dominates CNN execution time."""

    def test_cifarnet_conv_majority(self, options):
        result = simulate_network("cifarnet", GP102, options)
        by_cat = result.cycles_by_category()
        assert by_cat["Conv"] > 0.5 * result.total_cycles


class TestObservation2:
    """L1D helps CNNs, not RNNs."""

    def test_cnn_gains_rnn_does_not(self, options):
        gains = {}
        for name in ("cifarnet", "gru"):
            with_l1 = simulate_network(name, GP102, options).total_cycles
            without = simulate_network(name, GP102.with_l1(0), options).total_cycles
            gains[name] = 1.0 - with_l1 / without
        assert gains["cifarnet"] > 2 * max(gains["gru"], 0.01)

    def test_rnn_flat_across_l1_sizes(self, options):
        sizes = [64 * 1024, 256 * 1024]
        cycles = [
            simulate_network("gru", GP102.with_l1(size), options).total_cycles
            for size in sizes
        ]
        assert abs(cycles[0] - cycles[1]) / cycles[0] < 0.02


class TestObservation5:
    """Stall breakdown is a signature of layer type."""

    def test_fc_throttles_conv_does_not(self, options):
        result = simulate_network("cifarnet", GP102, options)
        by_cat = result.stats_by_category()
        fc = by_cat["FC"].stall_fractions()
        conv = by_cat["Conv"].stall_fractions()
        assert fc.get(StallReason.MEMORY_THROTTLE, 0) > conv.get(
            StallReason.MEMORY_THROTTLE, 0
        )


class TestObservations6to8:
    """Instruction mixes distinguish CNNs from RNNs; integers dominate."""

    def test_cnn_vs_rnn_mixes(self):
        cnn = opcode_mix("cifarnet")
        rnn = opcode_mix("gru")
        assert cnn["shl"] > rnn.get("shl", 0.0)
        assert rnn["add"] > 0.15 and rnn["ld"] > 0.15

    def test_integer_instructions_dominate(self):
        for name in ("alexnet", "resnet", "vggnet"):
            assert f32_fraction(name) < 0.5


class TestObservation12:
    """LRR is good enough (better than GTO) on conv-heavy networks."""

    def test_lrr_beats_gto_on_cifarnet(self, options):
        gto = simulate_network("cifarnet", GP102, options).total_cycles
        lrr = simulate_network(
            "cifarnet", GP102, replace(options, scheduler="lrr")
        ).total_cycles
        assert lrr < gto


class TestPlatformScaling:
    """A mobile part must be slower than a server part on real work."""

    def test_tx1_slower_than_gp102(self, options):
        tx1 = simulate_network("squeezenet", TX1, options)
        gp102 = simulate_network("squeezenet", GP102, options)
        assert tx1.total_time_ms > gp102.total_time_ms

    def test_gk210_profiles_cover_all_networks(self, options):
        result = simulate_network("lstm", GK210, options)
        assert result.total_cycles > 0
