"""Tests for latency-profile derivation and fleet-wide profile building."""

from __future__ import annotations

import pytest

from repro.gpu.simulator import simulate_network
from repro.runs import ResultStore
from repro.platforms import GP102
from repro.serve.profiles import (
    LatencyProfile,
    build_profiles,
    profile_from_result,
    profiles_for_platform,
)


@pytest.fixture(scope="module")
def gru_result(light_options):
    return simulate_network("gru", GP102, light_options)


class TestProfileFromResult:
    def test_batch1_matches_simulated_total(self, gru_result):
        profile = profile_from_result(gru_result)
        assert profile.latency_ms(1) == pytest.approx(gru_result.total_time_ms)

    def test_latency_monotone_in_batch(self, gru_result):
        profile = profile_from_result(gru_result)
        latencies = [profile.latency_ms(b) for b in range(1, 33)]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_batching_amortizes_overhead(self, gru_result):
        # Sublinear latency growth: a batch of 8 is cheaper than 8
        # batch-1 inferences (launch overhead amortizes).
        profile = profile_from_result(gru_result)
        assert profile.latency_ms(8) < 8 * profile.latency_ms(1)
        assert profile.throughput_rps(8) > profile.throughput_rps(1)

    def test_terms_collapse_repeated_signatures(self, gru_result):
        profile = profile_from_result(gru_result)
        assert sum(t.count for t in profile.terms) == len(gru_result.kernels)
        assert len(profile.terms) <= len(gru_result.kernels)

    def test_roundtrip_to_dict(self, gru_result):
        profile = profile_from_result(gru_result)
        clone = LatencyProfile.from_dict(profile.to_dict())
        for batch in (1, 3, 8):
            assert clone.latency_ms(batch) == profile.latency_ms(batch)

    def test_rejects_batch_zero(self, gru_result):
        with pytest.raises(ValueError):
            profile_from_result(gru_result).latency_ms(0)


class TestBuildProfiles:
    def test_build_uses_store(self, light_options, tmp_path):
        store = ResultStore(tmp_path)
        first = build_profiles(["gru"], [GP102], light_options, store)
        assert store.run_stores > 0
        warm = ResultStore(tmp_path)
        second = build_profiles(["gru"], [GP102], light_options, warm)
        assert warm.run_hits > 0 and warm.run_stores == 0
        key = ("gru", "GP102")
        assert second[key].latency_ms(4) == first[key].latency_ms(4)

    def test_extension_networks_are_first_class(self, light_options):
        # The satellite requirement: mobilenet profiles build exactly
        # like the paper's seven.
        profiles = build_profiles(["mobilenet"], [GP102], light_options)
        profile = profiles[("mobilenet", "GP102")]
        assert profile.network == "mobilenet"
        assert profile.latency_ms(1) > 0

    def test_platform_slice(self, light_options):
        profiles = build_profiles(["gru", "lstm"], [GP102], light_options)
        sliced = profiles_for_platform(profiles, "GP102")
        assert set(sliced) == {"gru", "lstm"}
        assert profiles_for_platform(profiles, "TX1") == {}
