"""Tests for the synthetic pre-trained models and benchmark inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inputs import bitcoin_prices, input_for, synthetic_image
from repro.core.suite import get_network, list_networks
from repro.core.weights import (
    model_size_bytes,
    per_layer_weight_bytes,
    synthesize_weights,
)


class TestWeights:
    def test_deterministic_across_calls(self):
        graph = get_network("cifarnet")
        a = synthesize_weights(graph)
        b = synthesize_weights(graph)
        np.testing.assert_array_equal(a["conv1"]["weight"], b["conv1"]["weight"])

    def test_distinct_layers_get_distinct_weights(self):
        weights = synthesize_weights(get_network("cifarnet"))
        assert not np.array_equal(
            weights["conv1"]["weight"].ravel()[:100],
            weights["conv2"]["weight"].ravel()[:100],
        )

    def test_distinct_networks_get_distinct_weights(self):
        a = synthesize_weights(get_network("gru"))["gru_layer"]["u_z"]
        b = synthesize_weights(get_network("lstm"))["lstm_layer"]["u_i"]
        assert a.shape == b.shape
        assert not np.array_equal(a, b)

    def test_batchnorm_variances_positive(self):
        weights = synthesize_weights(get_network("resnet"))
        for node_name, tensors in weights.items():
            if "var" in tensors:
                assert (tensors["var"] > 0).all(), node_name

    def test_fan_in_scaling_keeps_activations_sane(self):
        # He-scaled weights: a deep stack must not explode or vanish.
        graph = get_network("vggnet")
        weights = synthesize_weights(graph)
        record = {}
        graph.run(input_for(graph), weights, record=record)
        mid = record["conv4_3"]
        assert np.isfinite(mid).all()
        assert 1e-6 < np.abs(mid).mean() < 1e4

    def test_all_weights_float32(self):
        weights = synthesize_weights(get_network("gru"))
        for tensors in weights.values():
            for array in tensors.values():
                assert array.dtype == np.float32

    @pytest.mark.parametrize("name", list_networks())
    def test_model_size_matches_weight_store(self, name):
        graph = get_network(name)
        weights = synthesize_weights(graph)
        stored = sum(
            arr.nbytes for tensors in weights.values() for arr in tensors.values()
        )
        assert stored == model_size_bytes(graph)

    def test_per_layer_files_cover_model(self):
        graph = get_network("alexnet")
        files = per_layer_weight_bytes(graph)
        assert sum(files.values()) == model_size_bytes(graph)
        assert "conv1" in files and "fc8" in files


class TestInputs:
    def test_image_shape_and_range(self):
        image = synthetic_image((3, 227, 227), seed=1)
        assert image.shape == (3, 227, 227)
        assert image.dtype == np.float32
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_image_deterministic_per_seed(self):
        a = synthetic_image((3, 32, 32), seed=5)
        b = synthetic_image((3, 32, 32), seed=5)
        c = synthetic_image((3, 32, 32), seed=6)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_image_is_smooth_not_white_noise(self):
        image = synthetic_image((1, 64, 64), seed=3)
        horizontal_diff = np.abs(np.diff(image[0], axis=1)).mean()
        assert horizontal_diff < 0.2  # neighbouring pixels correlate

    def test_bitcoin_prices_scaled(self):
        prices = bitcoin_prices(seq_len=2)
        assert prices.shape == (2, 1)
        assert (prices >= 0).all() and (prices <= 1).all()

    @pytest.mark.parametrize("name", list_networks())
    def test_input_for_every_network(self, name):
        graph = get_network(name)
        x = input_for(graph)
        assert tuple(x.shape) == tuple(graph.input_shape)

    def test_unknown_shape_rejected(self):
        from repro.core.graph import NetworkGraph

        with pytest.raises(ValueError, match="no input synthesizer"):
            input_for(NetworkGraph("odd", (2, 3, 4, 5)))
