"""Pareto frontier algebra and golden-frontier comparison semantics.

The frontier properties are pinned with hypothesis over random
objective vectors: dominance is a strict partial order, the frontier is
idempotent, and dominated points are irrelevant to it.  The comparison
tests pin the QoR gate's tolerance semantics — the contract CI's
campaign-smoke job relies on.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.expand import CampaignPoint
from repro.campaign.frontier import (
    compare_frontiers,
    dominates,
    format_compare,
    frontier_payload,
    objective_vector,
    pareto_frontier,
)
from repro.campaign.qor import QorRow

DIM = 3
OBJECTIVES = tuple((f"m{i}", 1) for i in range(DIM))
LABELS = tuple(f"min:m{i}" for i in range(DIM))

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.tuples(*([finite] * DIM))
vector_lists = st.lists(vectors, min_size=1, max_size=24)


def row_of(vector, index: int) -> QorRow:
    """A QorRow whose metrics encode *vector* (point identity unique
    per index via the batch axis)."""
    return QorRow(
        point=CampaignPoint("gru", "gp102", 64, "gto", "light", index + 1),
        metrics={f"m{i}": value for i, value in enumerate(vector)},
    )


def rows_of(vectors_) -> list[QorRow]:
    return [row_of(vector, i) for i, vector in enumerate(vectors_)]


class TestDominanceIsAStrictPartialOrder:
    @given(vectors)
    def test_irreflexive(self, v):
        assert not dominates(v, v)

    @given(vectors, vectors)
    def test_asymmetric(self, a, b):
        if dominates(a, b):
            assert not dominates(b, a)

    @given(vectors, vectors, vectors)
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)


class TestFrontierAlgebra:
    @given(vector_lists)
    def test_frontier_of_frontier_is_itself(self, vecs):
        frontier = pareto_frontier(rows_of(vecs), OBJECTIVES)
        assert pareto_frontier(frontier, OBJECTIVES) == frontier

    @given(vector_lists)
    @settings(max_examples=50)
    def test_adding_a_dominated_point_changes_nothing(self, vecs):
        rows = rows_of(vecs)
        frontier = pareto_frontier(rows, OBJECTIVES)
        # a point strictly worse than an existing frontier member
        base = objective_vector(frontier[0].metrics, OBJECTIVES)
        dominated = row_of(tuple(v + 1.0 for v in base), len(rows))
        assert pareto_frontier(rows + [dominated], OBJECTIVES) == frontier

    @given(vector_lists)
    @settings(max_examples=50)
    def test_every_excluded_row_is_dominated_by_a_frontier_row(self, vecs):
        rows = rows_of(vecs)
        frontier = pareto_frontier(rows, OBJECTIVES)
        frontier_vecs = [
            objective_vector(row.metrics, OBJECTIVES) for row in frontier
        ]
        for row in rows:
            if row in frontier:
                continue
            vec = objective_vector(row.metrics, OBJECTIVES)
            assert any(dominates(fv, vec) for fv in frontier_vecs)

    @given(vector_lists)
    def test_frontier_is_never_empty(self, vecs):
        assert pareto_frontier(rows_of(vecs), OBJECTIVES)

    def test_ties_all_survive(self):
        rows = rows_of([(1.0, 2.0, 3.0)] * 3)
        assert pareto_frontier(rows, OBJECTIVES) == rows

    def test_max_objective_flips_direction(self):
        rows = rows_of([(1.0, 1.0, 1.0), (2.0, 1.0, 1.0)])
        maximize_first = (("m0", -1), ("m1", 1), ("m2", 1))
        assert pareto_frontier(rows, maximize_first) == [rows[1]]


def payload_of(vecs, tolerance: float = 0.02) -> dict:
    frontier = pareto_frontier(rows_of(vecs), OBJECTIVES)
    return frontier_payload("t", LABELS, frontier, tolerance=tolerance)


class TestCompareFrontiers:
    def test_identical_frontiers_compare_clean(self):
        payload = payload_of([(1.0, 2.0, 3.0), (3.0, 2.0, 1.0)])
        report = compare_frontiers(payload, copy.deepcopy(payload))
        assert report["ok"]
        assert not report["retreats"] and not report["dominated"]
        assert "OK" in format_compare(report)

    def test_within_tolerance_noise_compares_clean(self):
        golden = payload_of([(1.0, 2.0, 3.0), (3.0, 2.0, 1.0)])
        noisy = copy.deepcopy(golden)
        for point in noisy["points"]:
            for key in point["metrics"]:
                point["metrics"][key] *= 1.01  # inside the 2% band
        assert compare_frontiers(golden, noisy)["ok"]

    def test_retreat_beyond_tolerance_regresses(self):
        golden = payload_of([(1.0, 2.0, 3.0), (3.0, 2.0, 1.0)])
        worse = copy.deepcopy(golden)
        worse["points"][0]["metrics"]["m0"] *= 1.10
        report = compare_frontiers(golden, worse)
        assert not report["ok"]
        assert report["retreats"]
        assert report["dominated"]  # same point is also beaten by golden
        assert "REGRESSION" in format_compare(report)

    def test_lost_point_is_a_retreat(self):
        golden = payload_of([(1.0, 2.0, 3.0), (3.0, 2.0, 1.0)])
        current = copy.deepcopy(golden)
        del current["points"][1]
        report = compare_frontiers(golden, current)
        assert not report["ok"]
        assert len(report["retreats"]) == 1

    def test_improvement_passes_and_is_counted(self):
        golden = payload_of([(2.0, 2.0, 2.0)])
        better = payload_of([(1.0, 1.0, 1.0)])
        report = compare_frontiers(golden, better)
        assert report["ok"]
        assert report["improvements"] == 1

    def test_gained_point_passes(self):
        golden = payload_of([(1.0, 2.0, 3.0)])
        current = payload_of([(1.0, 2.0, 3.0), (3.0, 2.0, 1.0)])
        assert compare_frontiers(golden, current)["ok"]

    def test_objective_mismatch_is_an_error(self):
        golden = payload_of([(1.0, 2.0, 3.0)])
        current = copy.deepcopy(golden)
        current["objectives"] = ["min:m0", "min:m1", "max:m2"]
        report = compare_frontiers(golden, current)
        assert not report["ok"]
        assert report["errors"]

    def test_tolerance_argument_overrides_golden_default(self):
        golden = payload_of([(1.0, 2.0, 3.0)])
        worse = copy.deepcopy(golden)
        worse["points"][0]["metrics"]["m0"] *= 1.05
        assert not compare_frontiers(golden, worse)["ok"]
        assert compare_frontiers(golden, worse, tolerance=0.10)["ok"]

    def test_tolerance_bands_survive_zero_and_negative_values(self):
        golden = payload_of([(0.0, -5.0, 3.0)])
        assert compare_frontiers(golden, copy.deepcopy(golden))["ok"]

    @given(vector_lists)
    @settings(max_examples=50)
    def test_any_frontier_compares_clean_against_itself(self, vecs):
        payload = payload_of(vecs)
        assert compare_frontiers(payload, copy.deepcopy(payload))["ok"]
