"""Persistent kernel-result cache: key contract and robustness.

The cache key must change when *any* field of the key tuple changes —
kernel signature, every GpuConfig field, every SimOptions field, and
the engine version — so a stale entry can never be returned.  Broken
cache files (corrupt JSON, truncation, schema or engine mismatches)
must read as misses, never as errors.
"""

from __future__ import annotations

import json
from dataclasses import fields, replace

import pytest

from repro.gpu.config import GpuConfig, SimOptions
from repro.gpu.simulator import simulate_network
from repro.platforms import GP102
from repro.runs.store import KernelResultCache, cache_key, default_cache_dir

#: A replacement value per field type, distinct from any default.
_BUMP = {
    str: lambda v: v + "-x",
    float: lambda v: v + 1.25,
    bool: lambda v: not v,
}


def _bumped(value):
    if value is None:
        return 5
    fn = _BUMP.get(type(value))
    if fn is not None:
        return fn(value)
    return value + 1  # int


class TestKeyContract:
    SIG = "Conv|(2, 2, 1)|(64, 1, 1)|24|0|128|False|100|1000"

    def test_every_options_field_invalidates(self):
        base = SimOptions()
        base_key = cache_key(self.SIG, GP102, base)
        for f in fields(SimOptions):
            varied = replace(base, **{f.name: _bumped(getattr(base, f.name))})
            key = cache_key(self.SIG, GP102, varied)
            assert key != base_key, f"SimOptions.{f.name} not in cache key"

    def test_every_config_field_invalidates(self):
        base = SimOptions()
        base_key = cache_key(self.SIG, GP102, base)
        for f in fields(GpuConfig):
            varied = replace(GP102, **{f.name: _bumped(getattr(GP102, f.name))})
            key = cache_key(self.SIG, varied, base)
            assert key != base_key, f"GpuConfig.{f.name} not in cache key"

    def test_signature_invalidates(self):
        base = SimOptions()
        assert cache_key(self.SIG, GP102, base) != cache_key(
            self.SIG + "|extra", GP102, base
        )

    def test_engine_version_invalidates(self, monkeypatch):
        import repro.gpu.vector as vector

        base = SimOptions()
        before = cache_key(self.SIG, GP102, base)
        monkeypatch.setattr(vector, "ENGINE_VERSION", "test-engine")
        assert cache_key(self.SIG, GP102, base) != before

    def test_stale_engine_entry_not_returned(self, tmp_path, monkeypatch):
        options = SimOptions().light()
        cache = KernelResultCache(tmp_path)
        simulate_network("gru", GP102, options, cache=cache)
        # Rewrite every stored payload as if an older engine produced it
        # *at the same key* (simulating an on-disk collision).
        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text())
            payload["engine"] = "fast-0"
            path.write_text(json.dumps(payload))
        stale = KernelResultCache(tmp_path)
        assert stale.get(self.SIG, GP102, options) is None
        result = simulate_network("gru", GP102, options, cache=stale)
        assert stale.hits == 0 and result.kernels


class TestRobustness:
    def _populated(self, tmp_path):
        options = SimOptions().light()
        cache = KernelResultCache(tmp_path)
        baseline = simulate_network("gru", GP102, options, cache=cache)
        files = sorted(tmp_path.glob("*.json"))
        assert files
        return options, baseline, files

    def test_corrupt_files_read_as_misses(self, tmp_path):
        options, baseline, files = self._populated(tmp_path)
        files[0].write_text("{not json at all")
        cache = KernelResultCache(tmp_path)
        result = simulate_network("gru", GP102, options, cache=cache)
        assert cache.misses >= 1
        for ka, kb in zip(baseline.kernels, result.kernels):
            assert ka.stats.__dict__ == kb.stats.__dict__

    def test_truncated_files_read_as_misses(self, tmp_path):
        options, baseline, files = self._populated(tmp_path)
        for path in files:
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        cache = KernelResultCache(tmp_path)
        result = simulate_network("gru", GP102, options, cache=cache)
        assert cache.hits == 0
        for ka, kb in zip(baseline.kernels, result.kernels):
            assert ka.stats.__dict__ == kb.stats.__dict__

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        options, _, files = self._populated(tmp_path)
        payload = json.loads(files[0].read_text())
        del payload["stats"]
        files[0].write_text(json.dumps(payload))
        cache = KernelResultCache(tmp_path)
        simulate_network("gru", GP102, options, cache=cache)
        assert cache.misses >= 1

    def test_misses_are_healed_by_store(self, tmp_path):
        options, _, files = self._populated(tmp_path)
        files[0].write_text("garbage")
        cache = KernelResultCache(tmp_path)
        simulate_network("gru", GP102, options, cache=cache)
        assert cache.stores >= 1
        healed = KernelResultCache(tmp_path)
        simulate_network("gru", GP102, options, cache=healed)
        assert healed.misses == 0

    def test_unwritable_directory_is_nonfatal(self, tmp_path):
        options = SimOptions().light()
        blocked = tmp_path / "blocked"
        blocked.write_text("")  # a file where the cache dir should be
        cache = KernelResultCache(blocked)
        result = simulate_network("gru", GP102, options, cache=cache)
        assert result.kernels and cache.stores > 0  # memory layer still works


class TestEnvironment:
    def test_env_var_overrides_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        assert KernelResultCache().cache_dir == tmp_path / "env-cache"

    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(default_cache_dir()) == ".repro-cache"
