"""Regenerate the golden series files (run from the repo root).

    PYTHONPATH=src python tests/golden/regen.py fixture   # seconds
    PYTHONPATH=src python tests/golden/regen.py full      # minutes

Only regenerate for an *intentional* behavioral change (engine bump,
new network weights); the tests pin these bytes on purpose.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from test_golden_series import FIXTURE_CTX, canonical, series_of  # noqa: E402

GOLDEN_DIR = Path(__file__).parent


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "fixture"
    if which == "fixture":
        path = GOLDEN_DIR / "fixture_series.json"
        path.write_text(canonical(series_of(FIXTURE_CTX)) + "\n")
    elif which == "full":
        path = GOLDEN_DIR / "suite_series.json"
        path.write_text(canonical(series_of()) + "\n")
    else:
        raise SystemExit(f"unknown target {which!r} (expected fixture|full)")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
