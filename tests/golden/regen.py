"""Regenerate the golden series files (run from the repo root).

    PYTHONPATH=src python tests/golden/regen.py fixture      # seconds
    PYTHONPATH=src python tests/golden/regen.py full         # minutes
    PYTHONPATH=src python tests/golden/regen.py campaign     # < 1 minute
    PYTHONPATH=src python tests/golden/regen.py serve-scale  # seconds

``campaign`` rewrites the committed golden Pareto frontiers in
``examples/`` (``smoke_frontier.json``, ``l1_sweep_frontier.json``)
that ``repro campaign compare`` and CI's campaign-smoke job gate on.
``serve-scale`` rewrites ``serve_scale.digest``, the stats digest of
``examples/serve_scale.toml`` at light fidelity that CI's serve-scale
job gates on.

Only regenerate for an *intentional* behavioral change (engine bump,
new network weights, QoR-model change); the tests pin these bytes on
purpose.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from test_golden_series import FIXTURE_CTX, canonical, series_of  # noqa: E402

GOLDEN_DIR = Path(__file__).parent
EXAMPLES_DIR = GOLDEN_DIR.parents[1] / "examples"

#: campaign spec -> committed golden frontier, both under examples/.
CAMPAIGN_GOLDENS = (
    ("smoke_campaign.toml", "smoke_frontier.json"),
    ("l1_sweep_campaign.toml", "l1_sweep_frontier.json"),
)


def regen_campaigns() -> None:
    from repro.campaign import load_campaign, run_campaign
    from repro.runs import ResultStore

    store = ResultStore()
    for spec_name, golden_name in CAMPAIGN_GOLDENS:
        spec = load_campaign(EXAMPLES_DIR / spec_name)
        result = run_campaign(spec, store=store, jobs=4)
        if not result.ok:
            raise SystemExit(
                f"{spec.name}: {len(result.skipped)} point(s) failed; "
                f"refusing to write a partial golden frontier"
            )
        path = EXAMPLES_DIR / golden_name
        path.write_text(json.dumps(result.frontier_payload(), indent=2) + "\n")
        print(f"wrote {path}")


def regen_serve_scale() -> None:
    from repro.gpu.config import SimOptions
    from repro.platforms import make_config
    from repro.runs import ResultStore
    from repro.serve import build_profiles, load_scenario, run_serve

    scenario = load_scenario(EXAMPLES_DIR / "serve_scale.toml")
    fleet = scenario.fleet()
    platforms = [device.platform for device in fleet]
    if scenario.autoscale is not None:
        platforms.append(make_config(scenario.autoscale.template))
    profiles = build_profiles(
        list(scenario.networks), platforms, SimOptions().light(), ResultStore(),
    )
    stats = run_serve(
        fleet, profiles, scenario.workload(), scenario.config,
        pipeline=scenario.pipeline(), loop=scenario.loop,
    )
    path = GOLDEN_DIR / "serve_scale.digest"
    path.write_text(stats.digest() + "\n")
    print(f"wrote {path}")


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "fixture"
    if which == "fixture":
        path = GOLDEN_DIR / "fixture_series.json"
        path.write_text(canonical(series_of(FIXTURE_CTX)) + "\n")
    elif which == "full":
        path = GOLDEN_DIR / "suite_series.json"
        path.write_text(canonical(series_of()) + "\n")
    elif which == "campaign":
        regen_campaigns()
        return
    elif which in ("serve-scale", "--serve-scale"):
        regen_serve_scale()
        return
    else:
        raise SystemExit(
            f"unknown target {which!r} "
            f"(expected fixture|full|campaign|serve-scale)"
        )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
