"""Tests for the harness CLI (``python -m repro.harness.suite``)."""

from __future__ import annotations

import pytest

from repro.harness.suite import main, run_all


class TestCli:
    def test_selected_analytic_experiments(self, capsys):
        exit_code = main(["table2", "fig09", "--no-cache"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "table2" in out and "fig09" in out
        assert "0 failed" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(ids=["fig99"], cache_dir=None, verbose=False)

    def test_run_all_returns_results(self):
        results = run_all(ids=["table1", "table4"], cache_dir=None, verbose=False)
        assert [r.exp_id for r in results] == ["table1", "table4"]
        assert all(r.all_passed for r in results)

    def test_notes_carry_timing(self):
        results = run_all(ids=["table2"], cache_dir=None, verbose=False)
        assert "s]" in results[0].notes
