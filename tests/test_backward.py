"""Gradient checks for the training-phase (back-propagation) extension.

Every backward pass is validated against central-difference numerical
gradients of its forward counterpart.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layers import backward as B
from repro.core.layers import functional as F

EPS = 1e-5


def numerical_grad(fn, x, d_out):
    """Central-difference gradient of ``sum(fn(x) * d_out)`` w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = float((fn(x) * d_out).sum())
        flat[i] = orig - EPS
        down = float((fn(x) * d_out).sum())
        flat[i] = orig
        gflat[i] = (up - down) / (2 * EPS)
    return grad


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestConvBackward:
    def test_input_gradient(self, rng):
        x = rng.normal(size=(2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        d_out = rng.normal(size=(3, 6, 6))
        d_x, _, _ = B.conv2d_backward(d_out, x, w, stride=1, pad=1)
        expected = numerical_grad(lambda v: F.conv2d(v, w, pad=1), x, d_out)
        np.testing.assert_allclose(d_x, expected, rtol=1e-4, atol=1e-6)

    def test_weight_gradient(self, rng):
        x = rng.normal(size=(2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        d_out = rng.normal(size=(2, 3, 3))
        _, d_w, _ = B.conv2d_backward(d_out, x, w)
        expected = numerical_grad(lambda v: F.conv2d(x, v), w, d_out)
        np.testing.assert_allclose(d_w, expected, rtol=1e-4, atol=1e-6)

    def test_bias_gradient(self, rng):
        x = rng.normal(size=(1, 4, 4))
        w = rng.normal(size=(2, 1, 1, 1))
        d_out = rng.normal(size=(2, 4, 4))
        _, _, d_b = B.conv2d_backward(d_out, x, w)
        np.testing.assert_allclose(d_b, d_out.sum(axis=(1, 2)))

    def test_strided_input_gradient(self, rng):
        x = rng.normal(size=(1, 7, 7))
        w = rng.normal(size=(2, 1, 3, 3))
        d_out = rng.normal(size=(2, 3, 3))
        d_x, _, _ = B.conv2d_backward(d_out, x, w, stride=2)
        expected = numerical_grad(lambda v: F.conv2d(v, w, stride=2), x, d_out)
        np.testing.assert_allclose(d_x, expected, rtol=1e-4, atol=1e-6)


class TestFcBackward:
    def test_all_gradients(self, rng):
        x = rng.normal(size=(2, 3, 3))
        w = rng.normal(size=(5, 18))
        d_out = rng.normal(size=5)
        d_x, d_w, d_b = B.fc_backward(d_out, x, w)
        expected_x = numerical_grad(
            lambda v: F.fully_connected(v, w), x, d_out
        )
        np.testing.assert_allclose(d_x, expected_x, rtol=1e-4, atol=1e-6)
        expected_w = numerical_grad(
            lambda v: F.fully_connected(x, v), w, d_out
        )
        np.testing.assert_allclose(d_w, expected_w, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(d_b, d_out)


class TestActivationBackward:
    def test_relu(self, rng):
        x = rng.normal(size=32)
        d_out = rng.normal(size=32)
        np.testing.assert_allclose(
            B.relu_backward(d_out, x), d_out * (x > 0)
        )

    def test_sigmoid_matches_numeric(self, rng):
        x = rng.normal(size=16)
        d_out = rng.normal(size=16)
        s = F.sigmoid(x)
        expected = numerical_grad(F.sigmoid, x, d_out)
        np.testing.assert_allclose(B.sigmoid_backward(d_out, s), expected, rtol=1e-4)

    def test_tanh_matches_numeric(self, rng):
        x = rng.normal(size=16)
        d_out = rng.normal(size=16)
        expected = numerical_grad(np.tanh, x, d_out)
        np.testing.assert_allclose(B.tanh_backward(d_out, np.tanh(x)), expected, rtol=1e-4)


class TestPoolBackward:
    def test_max_pool_routes_to_argmax(self, rng):
        x = rng.normal(size=(1, 4, 4))
        d_out = np.ones((1, 2, 2))
        d_x = B.max_pool2d_backward(d_out, x, kernel=2, stride=2)
        # Each window contributes its gradient only at its max.
        assert d_x.sum() == pytest.approx(4.0)
        assert (d_x != 0).sum() == 4

    def test_max_pool_matches_numeric(self, rng):
        x = rng.normal(size=(2, 6, 6))
        d_out = rng.normal(size=(2, 3, 3))
        d_x = B.max_pool2d_backward(d_out, x, kernel=2, stride=2)
        expected = numerical_grad(lambda v: F.max_pool2d(v, 2, 2), x, d_out)
        np.testing.assert_allclose(d_x, expected, rtol=1e-4, atol=1e-6)

    def test_avg_pool_matches_numeric(self, rng):
        x = rng.normal(size=(1, 4, 4))
        d_out = rng.normal(size=(1, 2, 2))
        d_x = B.avg_pool2d_backward(d_out, x.shape, kernel=2, stride=2)
        expected = numerical_grad(lambda v: F.avg_pool2d(v, 2, 2), x, d_out)
        np.testing.assert_allclose(d_x, expected, rtol=1e-4, atol=1e-6)


class TestNormBackward:
    def test_batch_norm_matches_numeric(self, rng):
        x = rng.normal(size=(3, 4, 4))
        mean = rng.normal(size=3)
        var = rng.uniform(0.5, 1.5, size=3)
        d_out = rng.normal(size=(3, 4, 4))
        d_x = B.batch_norm_backward(d_out, x, mean, var)
        expected = numerical_grad(lambda v: F.batch_norm(v, mean, var), x, d_out)
        np.testing.assert_allclose(d_x, expected, rtol=1e-4, atol=1e-6)

    def test_scale_gradients_match_numeric(self, rng):
        x = rng.normal(size=(2, 3, 3))
        gamma = rng.uniform(0.5, 1.5, size=2)
        beta = rng.normal(size=2)
        d_out = rng.normal(size=(2, 3, 3))
        d_x, d_gamma, d_beta = B.scale_backward(d_out, x, gamma)
        expected_x = numerical_grad(lambda v: F.scale(v, gamma, beta), x, d_out)
        np.testing.assert_allclose(d_x, expected_x, rtol=1e-4, atol=1e-6)
        expected_gamma = numerical_grad(lambda g: F.scale(x, g, beta), gamma, d_out)
        np.testing.assert_allclose(d_gamma, expected_gamma, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(d_beta, d_out.sum(axis=(1, 2)))


class TestSoftmaxCrossEntropy:
    def test_gradient_formula(self, rng):
        logits = rng.normal(size=9)
        probs = F.softmax(logits)
        label = 3
        grad = B.softmax_cross_entropy_backward(probs, label)

        def loss(v):
            p = F.softmax(v)
            return np.array(-np.log(p[label]))

        expected = numerical_grad(loss, logits, np.array(1.0))
        np.testing.assert_allclose(grad, expected, rtol=1e-4, atol=1e-6)


class TestGruBackward:
    def test_parameter_gradients_match_numeric(self, rng):
        hsize, isize = 5, 2
        x = rng.normal(size=isize)
        h = rng.normal(size=hsize)
        weights = {}
        for gate in ("z", "r", "h"):
            weights[f"w_{gate}"] = rng.normal(size=(hsize, isize))
            weights[f"u_{gate}"] = rng.normal(size=(hsize, hsize))
            weights[f"b_{gate}"] = rng.normal(size=hsize)
        d_out = rng.normal(size=hsize)
        grads = B.gru_cell_backward(d_out, x, h, weights)

        def forward_with(name, value):
            w = dict(weights)
            w[name] = value
            return F.gru_cell(
                x, h, w["w_z"], w["u_z"], w["b_z"], w["w_r"], w["u_r"], w["b_r"],
                w["w_h"], w["u_h"], w["b_h"],
            )

        for name in ("u_z", "w_r", "b_h"):
            expected = numerical_grad(
                lambda v, n=name: forward_with(n, v), weights[name].copy(), d_out
            )
            np.testing.assert_allclose(
                grads[f"d_{name}"], expected, rtol=1e-3, atol=1e-6
            )

    def test_hidden_state_gradient(self, rng):
        hsize = 4
        x = rng.normal(size=1)
        h = rng.normal(size=hsize)
        weights = {}
        for gate in ("z", "r", "h"):
            weights[f"w_{gate}"] = rng.normal(size=(hsize, 1))
            weights[f"u_{gate}"] = rng.normal(size=(hsize, hsize))
            weights[f"b_{gate}"] = rng.normal(size=hsize)
        d_out = rng.normal(size=hsize)
        grads = B.gru_cell_backward(d_out, x, h, weights)

        def forward_h(hv):
            return F.gru_cell(
                x, hv,
                weights["w_z"], weights["u_z"], weights["b_z"],
                weights["w_r"], weights["u_r"], weights["b_r"],
                weights["w_h"], weights["u_h"], weights["b_h"],
            )

        expected = numerical_grad(forward_h, h.copy(), d_out)
        np.testing.assert_allclose(grads["d_h"], expected, rtol=1e-3, atol=1e-6)
