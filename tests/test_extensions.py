"""Tests for the paper's stated future-work extensions.

The paper names three planned additions: more networks "such as
MobileNet" (Section III), back-propagation for training (Section II-C,
tested in ``test_backward.py``), and quantization (Section IV-D).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inputs import input_for
from repro.core.quant import (
    QMAX,
    quantization_error,
    quantize,
    quantize_weights,
    quantized_model_bytes,
    run_quantized,
)
from repro.core.suite import (
    EXTENSION_NETWORKS,
    NETWORK_ORDER,
    TangoSuite,
    get_network,
)
from repro.core.weights import model_size_bytes, synthesize_weights
from repro.kernels.compile import compiled_network


class TestMobileNet:
    @pytest.fixture(scope="class")
    def graph(self):
        return get_network("mobilenet")

    def test_extension_not_in_paper_set(self):
        assert "mobilenet" in EXTENSION_NETWORKS
        assert "mobilenet" not in NETWORK_ORDER

    def test_structure(self, graph):
        from repro.core.layers import DepthwiseConv2D

        depthwise = [n for n in graph.nodes if isinstance(n.layer, DepthwiseConv2D)]
        assert len(depthwise) == 13  # thirteen separable blocks
        assert graph.out_shape("conv13_pw") == (1024, 7, 7)
        assert graph.out_shape("fc") == (1000,)

    def test_inference(self):
        suite = TangoSuite(names=("mobilenet",))
        out = suite["mobilenet"].run()
        assert out.shape == (1000,)
        assert out.sum() == pytest.approx(1.0, abs=1e-5)

    def test_model_size_matches_reference(self, graph):
        # MobileNet v1 (width 1.0): ~4.2M parameters ~= 17 MB in f32.
        size_mb = model_size_bytes(graph) / 2**20
        assert 14 <= size_mb <= 20, size_mb

    def test_compiles_to_kernels(self, graph):
        kernels = compiled_network("mobilenet")
        assert len(kernels) == len(graph)  # one kernel per layer here
        names = {k.node_name for k in kernels}
        assert "conv2_dw" in names and "conv2_pw" in names

    def test_depthwise_kernels_not_input_shared(self):
        kernels = {k.node_name: k for k in compiled_network("mobilenet")}
        # Depthwise blocks read channel-private planes; pointwise convs
        # sweep the whole input from every block.
        assert not kernels["conv2_dw"].shared_input
        assert kernels["conv2_pw"].shared_input

    def test_simulates(self):
        from repro.gpu import SimOptions, simulate_network
        from repro.platforms import GP102

        result = simulate_network("mobilenet", GP102, SimOptions().light())
        by_cat = result.cycles_by_category()
        assert by_cat["Conv"] > 0


class TestDepthwiseFunctional:
    def test_matches_grouped_full_conv(self):
        from repro.core.layers.functional import conv2d, depthwise_conv2d

        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 9, 9))
        w = rng.normal(size=(4, 3, 3))
        out = depthwise_conv2d(x, w, stride=2, pad=1)
        for c in range(4):
            ref = conv2d(x[c : c + 1], w[c][None, None], stride=2, pad=1)
            np.testing.assert_allclose(out[c], ref[0], rtol=1e-6)

    def test_channel_mismatch_rejected(self):
        from repro.core.layers.functional import depthwise_conv2d

        with pytest.raises(ValueError, match="channels"):
            depthwise_conv2d(np.zeros((2, 4, 4)), np.zeros((3, 3, 3)))


class TestQuantization:
    def test_roundtrip_error_small(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 64)).astype(np.float32)
        assert quantization_error(x) < 0.01

    def test_values_in_symmetric_range(self):
        rng = np.random.default_rng(2)
        q = quantize(rng.normal(size=1000))
        assert q.values.min() >= -QMAX and q.values.max() <= QMAX
        assert q.values.dtype == np.int8

    def test_zero_tensor_safe(self):
        q = quantize(np.zeros(8))
        assert (q.values == 0).all()
        np.testing.assert_array_equal(q.dequantize(), np.zeros(8))

    def test_qconv_close_to_float(self):
        from repro.core.layers.functional import conv2d
        from repro.core.quant import qconv2d

        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 12, 12)).astype(np.float32)
        w = rng.normal(size=(8, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=8).astype(np.float32)
        ref = conv2d(x, w, b, stride=1, pad=1)
        out = qconv2d(x, quantize(w), b, stride=1, pad=1)
        rel = np.abs(out - ref).max() / (np.abs(ref).max() + 1e-9)
        assert rel < 0.05

    def test_quantized_cifarnet_agrees_with_float(self):
        graph = get_network("cifarnet")
        weights = synthesize_weights(graph)
        x = input_for(graph)
        float_out = graph.run(x, weights)
        quant_out = run_quantized(graph, x, weights)
        # Same predicted class, probabilities within a few percent.
        assert int(np.argmax(float_out)) == int(np.argmax(quant_out))
        assert np.abs(float_out - quant_out).max() < 0.1

    def test_model_size_shrinks_nearly_4x(self):
        graph = get_network("cifarnet")
        weights = synthesize_weights(graph)
        full = model_size_bytes(graph)
        quantized = quantized_model_bytes(graph, weights)
        assert quantized < full / 3.2  # weights dominate; biases stay f32

    def test_quantize_weights_covers_conv_and_fc(self):
        graph = get_network("cifarnet")
        weights = synthesize_weights(graph)
        quantized = quantize_weights(graph, weights)
        assert {"conv1", "conv2", "conv3", "fc1", "fc2"} <= set(quantized)
