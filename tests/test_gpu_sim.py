"""Integration tests for the GPU timing simulator."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.gpu import SimOptions, simulate_kernel, simulate_network
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.scheduler import GtoScheduler, LrrScheduler, TlvScheduler, make_scheduler
from repro.kernels.compile import compiled_network
from repro.platforms import GP102
from repro.profiling.stall import StallReason


@pytest.fixture(scope="module")
def options():
    return SimOptions().light()


@pytest.fixture(scope="module")
def cifar_result(options):
    return simulate_network("cifarnet", GP102, options)


@pytest.fixture(scope="module")
def gru_result(options):
    return simulate_network("gru", GP102, options)


class TestOccupancy:
    def test_thread_limited_kernel(self):
        kernels = {k.name: k for k in compiled_network("alexnet")}
        occ = compute_occupancy(kernels["conv1-1"], GP102)
        assert occ.blocks == 2  # 1024-thread blocks, 2048 threads/SM
        assert occ.warps == 64

    def test_single_block_grid(self):
        kernels = {k.name: k for k in compiled_network("cifarnet")}
        occ = compute_occupancy(kernels["conv1"], GP102)
        assert occ.blocks == 1  # grid is (1,1,1): one resident block

    def test_small_grid_spreads_over_sms(self):
        kernels = {k.name: k for k in compiled_network("squeezenet")}
        occ = compute_occupancy(kernels["conv1"], GP102)
        # 111 blocks over 28 SMs -> at most ceil(111/28)=4 per SM.
        assert occ.blocks <= 4

    def test_register_allocation_within_file(self):
        for k in compiled_network("alexnet"):
            occ = compute_occupancy(k, GP102)
            assert occ.allocated_register_bytes <= GP102.register_file_bytes_per_sm


class TestSchedulers:
    def test_factory(self):
        assert isinstance(make_scheduler("gto", []), GtoScheduler)
        assert isinstance(make_scheduler("lrr", []), LrrScheduler)
        assert isinstance(make_scheduler("tlv", []), TlvScheduler)
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("fifo", [])

    def test_gto_prefers_current_warp(self):
        class W:  # minimal stand-in
            done = False

        warps = [W(), W(), W()]
        sched = GtoScheduler(warps)
        sched.notify_issue(warps[2])
        assert next(iter(sched.order(0))) is warps[2]

    def test_lrr_rotates(self):
        class W:
            done = False

        warps = [W(), W(), W()]
        sched = LrrScheduler(warps)
        sched.notify_issue(warps[0])
        assert next(iter(sched.order(0))) is warps[1]

    def test_tlv_group_is_bounded(self):
        class W:
            done = False

        warps = [W() for _ in range(20)]
        sched = TlvScheduler(warps, group_size=4)
        ordered = list(sched.order(0))
        assert len(ordered) == 20  # all warps eventually considered
        assert ordered[0] in warps[:4]


class TestKernelSimulation:
    def test_all_warps_retire(self, options):
        kernel = compiled_network("cifarnet")[0]
        result = simulate_kernel(kernel, GP102, options)
        assert result.stats.wave_cycles > 0
        assert result.stats.issued > 0

    def test_cycles_scale_with_waves(self, options):
        kernels = {k.name: k for k in compiled_network("alexnet")}
        result = simulate_kernel(kernels["fc6"], GP102, options)
        assert result.stats.waves >= 2  # 4096 single-thread blocks

    def test_event_counters_estimate_dynamic_instructions(self, options):
        kernel = compiled_network("cifarnet")[0]
        result = simulate_kernel(kernel, GP102, options)
        # Issue counts are per *warp* instruction (as nvprof reports
        # inst_issued); the weighted, block-scaled total should match the
        # per-thread dynamic count divided by the 32-lane warp width.
        dynamic_warp = kernel.dynamic_instructions() / 32
        assert 0.5 * dynamic_warp <= result.stats.issued <= 2.0 * dynamic_warp

    def test_stall_reasons_recorded(self, cifar_result):
        total = sum(k.stats.total_stalls for k in cifar_result.kernels)
        assert total > 0
        reasons = set()
        for k in cifar_result.kernels:
            reasons |= set(k.stats.stalls)
        assert StallReason.MEMORY_DEPENDENCY in reasons

    def test_fc_shows_memory_throttle(self, options):
        # CifarNet's FC kernel: 64 lanes each streaming a private weight
        # row -> 32 uncoalesced transactions per load -> MSHR exhaustion.
        kernels = {k.name: k for k in compiled_network("cifarnet")}
        result = simulate_kernel(kernels["fc1"], GP102, options)
        fractions = result.stats.stall_fractions()
        assert fractions.get(StallReason.MEMORY_THROTTLE, 0.0) > 0.05

    def test_barrier_completes_for_rnn(self, gru_result):
        assert gru_result.total_cycles > 0
        sync = sum(
            k.stats.stalls.get(StallReason.SYNC, 0.0) for k in gru_result.kernels
        )
        assert sync >= 0.0  # and, crucially, no deadlock


class TestNetworkSimulation:
    def test_kernel_order_matches_compilation(self, cifar_result):
        compiled = [k.name for k in compiled_network("cifarnet")]
        simulated = [k.kernel.name for k in cifar_result.kernels]
        assert simulated == compiled

    def test_categories_aggregate(self, cifar_result):
        by_cat = cifar_result.cycles_by_category()
        assert set(by_cat) == {"Conv", "Pooling", "FC", "Others"}
        assert sum(by_cat.values()) == pytest.approx(cifar_result.total_cycles)

    def test_conv_dominates_cifarnet(self, cifar_result):
        by_cat = cifar_result.cycles_by_category()
        assert by_cat["Conv"] > 0.5 * cifar_result.total_cycles

    def test_signature_cache_reuses_results(self, options):
        result = simulate_network("resnet", GP102, replace(options, max_trips=4))
        names = [k.kernel.name for k in result.kernels]
        assert len(names) == len(compiled_network("resnet"))

    def test_deterministic(self, options):
        a = simulate_network("gru", GP102, options).total_cycles
        b = simulate_network("gru", GP102, options).total_cycles
        assert a == b

    def test_l1_bypass_slower_than_default(self, options):
        with_l1 = simulate_network("cifarnet", GP102, options).total_cycles
        without = simulate_network("cifarnet", GP102.with_l1(0), options).total_cycles
        assert without > with_l1

    def test_lstm_slower_than_gru(self, options, gru_result):
        lstm = simulate_network("lstm", GP102, options)
        assert lstm.total_cycles > gru_result.total_cycles
