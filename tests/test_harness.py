"""Tests for the experiment harness: report, runner cache, experiments.

Simulation-heavy experiments are exercised through the analytic ones
plus the runner's caching machinery; the full figure set is regenerated
by the benchmark harness (``pytest benchmarks/``).
"""

from __future__ import annotations

import json

import pytest

from repro.gpu.config import SimOptions
from repro.harness.report import Check, ExperimentResult
from repro.harness.runner import Runner, stats_from_dict, stats_to_dict
from repro.harness import tables
from repro.harness import fig08_op_breakdown, fig09_top_ops, fig10_dtype_breakdown
from repro.harness import fig11_memfootprint, fig12_register_usage
from repro.harness.suite import EXPERIMENTS
from repro.isa.opcodes import Pipe
from repro.platforms import GP102
from repro.profiling.stall import StallReason
from repro.profiling.stats import KernelStats


class TestReport:
    def test_check_renders_pass_fail(self):
        assert "PASS" in str(Check("claim", True))
        assert "FAIL" in str(Check("claim", False, "why"))

    def test_experiment_all_passed(self):
        result = ExperimentResult("x", "t", checks=[Check("a", True), Check("b", False)])
        assert not result.all_passed

    def test_format_includes_series_and_checks(self):
        result = ExperimentResult(
            "fig99", "Title", series={"s": {"a": 0.5}}, checks=[Check("c", True)]
        )
        text = result.format()
        assert "fig99" in text and "a=0.5" in text and "PASS" in text

    def test_series_json_serializable(self):
        result = tables.run_table2(Runner(cache_dir=None))
        json.dumps(result.series)  # must not raise


class TestRunnerCache:
    def test_stats_roundtrip(self):
        stats = KernelStats()
        stats.cycles = 123.0
        stats.issued_by_pipe[Pipe.FPU] = 7.0
        stats.stalls[StallReason.PIPE_BUSY] = 3.0
        stats.l2_misses = 11.0
        clone = stats_from_dict(stats_to_dict(stats))
        assert clone.cycles == 123.0
        assert clone.issued_by_pipe[Pipe.FPU] == 7.0
        assert clone.stalls[StallReason.PIPE_BUSY] == 3.0
        assert clone.l2_misses == 11.0

    def test_disk_cache_hit(self, tmp_path):
        options = SimOptions(max_trips=4, max_outer_trips=1, max_sim_blocks=1)
        runner = Runner(cache_dir=tmp_path)
        first = runner.run("gru", GP102, options)
        assert len(list(tmp_path.glob("*.json"))) == 1
        fresh_runner = Runner(cache_dir=tmp_path)
        second = fresh_runner.run("gru", GP102, options)
        assert second.total_cycles == first.total_cycles

    def test_cache_key_differs_by_config(self, tmp_path):
        options = SimOptions(max_trips=4, max_outer_trips=1, max_sim_blocks=1)
        runner = Runner(cache_dir=tmp_path)
        runner.run("gru", GP102, options)
        runner.run("gru", GP102.with_l1(0), options)
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_cached_result_api(self, tmp_path):
        options = SimOptions(max_trips=4, max_outer_trips=1, max_sim_blocks=1)
        result = Runner(cache_dir=tmp_path).run("gru", GP102, options)
        assert result.network == "gru"
        assert result.total_time_ms > 0
        assert sum(result.cycles_by_category().values()) == pytest.approx(
            result.total_cycles
        )
        assert result.aggregate().issued > 0


class TestAnalyticExperiments:
    """Experiments that need no simulation run fully in unit tests."""

    @pytest.fixture(scope="class")
    def runner(self):
        return Runner(cache_dir=None)

    @pytest.mark.parametrize(
        "experiment",
        [
            tables.run_table1,
            tables.run_table2,
            tables.run_table3,
            tables.run_table4,
            fig08_op_breakdown.run,
            fig09_top_ops.run,
            fig10_dtype_breakdown.run,
            fig11_memfootprint.run,
            fig12_register_usage.run,
        ],
    )
    def test_experiment_checks_pass(self, runner, experiment):
        result = experiment(runner)
        failed = [str(c) for c in result.checks if not c.passed]
        assert not failed, failed

    def test_registry_covers_all_tables_and_figures(self):
        expected = {f"table{i}" for i in range(1, 5)} | {
            f"fig{i:02d}" for i in range(1, 17)
        }
        assert set(EXPERIMENTS) == expected
