"""Tier-1 lint gate: the full benchmark suite must verify error-clean.

Every one of the seven Tango networks — plus every extension network
(mobilenet), which is first-class in the gate — is compiled and pushed
through all four static-analysis passes.  Error-severity diagnostics mean the
compiled IR is unfaithful (out-of-bounds addresses, unwritten-register
reads, shared-memory races, smem overflow) and fail the build; warnings
and notes (uncoalesced FC loads, stranded pool geometries, padding
overhang) mirror behaviour the paper itself observes and are allowed.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, analyze_network
from repro.core.suite import EXTENSION_NETWORKS, NETWORK_ORDER


@pytest.mark.lint_suite
@pytest.mark.parametrize("network", NETWORK_ORDER + EXTENSION_NETWORKS)
def test_network_lints_error_clean(network):
    report = analyze_network(network)
    assert report.kernel_count > 0
    errors = report.errors
    assert not errors, (
        f"{network}: {len(errors)} error diagnostic(s):\n"
        + report.format(min_severity=Severity.ERROR)
    )


@pytest.mark.lint_suite
def test_suite_reports_expected_warning_shapes():
    # The paper's own observations should surface as warnings, not be
    # silenced: CifarNet's FC/pool stages strand threads and stride
    # weight rows (sec. V-B uncoalesced / memory_throttle narrative).
    report = analyze_network("cifarnet")
    warning_codes = {d.code for d in report.diagnostics if d.severity is Severity.WARNING}
    assert "uncoalesced-access" in warning_codes
