"""Vector-engine (fast-3) building blocks vs their scalar references.

The whole-network bit-identity gate lives in
``test_engine_equivalence.py``; this file pins the pieces the vector
engine is assembled from, each against the scalar path it replaces:

* the engine registry (selection precedence, version strings, wave
  classes, seed delegation);
* the per-warp precomputed transaction tables vs
  :func:`repro.gpu.sm._gmem_txs` on real suite kernels (both the numpy
  broadcast path and the small-wave scalar fallback);
* :meth:`repro.memory.cache.Cache.bulk_warm` vs a zero-weight scalar
  replay on randomized (hypothesis) address sequences — small and
  large, empty and pre-populated sets, with and without overflow;
* the structure-of-arrays decode view vs the flat decoded tuples, and
  the numpy-safety of address-term evaluation on randomized values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import engine as engine_registry
from repro.gpu import seed_engine
from repro.gpu.config import SimOptions
from repro.gpu.decode import K_ALU, K_CTRL, K_GMEM, decode_program
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.simulator import _GUARD_DECODED, _make_hierarchy, simulate_network
from repro.gpu.sm import SmWave, _gmem_txs
from repro.gpu.vector import VectorWave
from repro.isa.program import expand_program
from repro.kernels.addressing import Term
from repro.kernels.compile import compiled_network
from repro.memory.cache import Cache
from repro.platforms import GP102


@pytest.fixture
def reset_engine():
    yield
    engine_registry.set_engine(None)


class TestEngineRegistry:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(engine_registry.ENGINE_ENV, raising=False)
        assert engine_registry.get_engine() == "vector"

    def test_env_selects_engine(self, monkeypatch):
        monkeypatch.setenv(engine_registry.ENGINE_ENV, "fast")
        assert engine_registry.get_engine() == "fast"

    def test_set_engine_beats_env(self, monkeypatch, reset_engine):
        monkeypatch.setenv(engine_registry.ENGINE_ENV, "fast")
        engine_registry.set_engine("seed")
        assert engine_registry.get_engine() == "seed"
        engine_registry.set_engine(None)
        assert engine_registry.get_engine() == "fast"

    def test_invalid_names_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine"):
            engine_registry.set_engine("warp-drive")
        monkeypatch.setenv(engine_registry.ENGINE_ENV, "nonesuch")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            engine_registry.get_engine()

    def test_version_strings(self):
        assert engine_registry.engine_version("seed") == "seed-1"
        assert engine_registry.engine_version("fast") == "fast-2.1"
        assert engine_registry.engine_version("vector") == "fast-3"

    def test_wave_classes(self):
        assert engine_registry.wave_class("fast") is SmWave
        assert engine_registry.wave_class("vector") is VectorWave
        with pytest.raises(ValueError):
            engine_registry.wave_class("seed")

    def test_seed_engine_delegation(self, reset_engine):
        # With the seed engine forced, the simulator facade must hand
        # the whole run to the frozen driver — identical numbers.
        options = SimOptions().light()
        oracle = seed_engine.simulate_network("gru", GP102, options)
        engine_registry.set_engine("seed")
        via_facade = simulate_network("gru", GP102, options)
        assert len(oracle.kernels) == len(via_facade.kernels)
        for ka, kb in zip(oracle.kernels, via_facade.kernels):
            assert ka.stats.__dict__ == kb.stats.__dict__


def _make_wave(kernel, options):
    """Mirror ``simulate_kernel``'s wave setup for one kernel."""
    expanded = expand_program(
        kernel.program, options.max_trips, options.max_outer_trips
    )
    decoded = decode_program(expanded)
    occupancy = compute_occupancy(kernel, GP102)
    sim_blocks = occupancy.blocks
    if options.max_sim_blocks is not None:
        sim_blocks = max(1, min(sim_blocks, options.max_sim_blocks))
    wave = VectorWave(
        kernel, decoded, _GUARD_DECODED, sim_blocks,
        GP102, options, _make_hierarchy(GP102),
    )
    return wave, decoded


class TestPtxPrecompute:
    @pytest.mark.parametrize("network", ["alexnet", "gru"])
    def test_tables_match_scalar_helper(self, network):
        # Every (warp, pc) entry must equal what the scalar engine
        # would compute lazily at issue time.  alexnet's large grids
        # exercise the numpy broadcast path; gru's point kernels (and
        # any wave under 24 blocks) exercise the scalar fallback.
        options = SimOptions()
        saw_vector_path = False
        for kernel in compiled_network(network):
            wave, decoded = _make_wave(kernel, options)
            ptx = wave._ensure_ptx()
            if len(wave.blocks) >= 24:
                saw_vector_path = True
            gpcs = decoded.soa().gmem_pcs
            dec = decoded.instrs
            for w in wave.warps:
                if w.dprog is not decoded or not w.n_active:
                    assert ptx[w.warp_id] == {}
                    continue
                for pc in gpcs:
                    assert ptx[w.warp_id][pc] == _gmem_txs(w, pc, dec[pc][4]), (
                        f"{kernel.name} warp {w.warp_id} pc {pc}"
                    )
        assert saw_vector_path == (network == "alexnet")

    def test_light_options_use_scalar_fallback(self):
        # Light fidelity caps waves at 2 blocks — always under the
        # vectorization threshold, still value-identical.
        options = SimOptions().light()
        kernel = compiled_network("cifarnet")[0]
        wave, decoded = _make_wave(kernel, options)
        assert len(wave.blocks) < 24
        ptx = wave._ensure_ptx()
        dec = decoded.instrs
        for w in wave.warps:
            if w.dprog is not decoded or not w.n_active:
                continue
            for pc in decoded.soa().gmem_pcs:
                assert ptx[w.warp_id][pc] == _gmem_txs(w, pc, dec[pc][4])


def _replay_scalar(cache: Cache, addrs) -> None:
    for addr in addrs:
        cache.access(int(addr), weight=0.0)


def _cache_state(cache: Cache) -> list[list[int]]:
    return [list(entry) for entry in cache._sets]


def _stats_tuple(cache: Cache) -> tuple[float, float, float]:
    return (cache.stats.accesses, cache.stats.hits, cache.stats.misses)


@st.composite
def warm_case(draw):
    size_kb = draw(st.sampled_from([1, 2, 8]))
    assoc = draw(st.sampled_from([2, 4, 8]))
    # Small address space so hypothesis finds set collisions, repeats
    # and associativity overflows without thousands of examples.
    addr = st.integers(min_value=0, max_value=1 << 14)
    prefill = draw(st.lists(addr, max_size=40))
    warm = draw(st.lists(addr, max_size=120))
    return size_kb * 1024, assoc, prefill, warm


class TestBulkWarm:
    @given(warm_case())
    @settings(max_examples=150, deadline=None)
    def test_matches_zero_weight_scalar_replay(self, case):
        size, assoc, prefill, warm = case
        vec = Cache("vec", size, line_bytes=128, assoc=assoc)
        ref = Cache("ref", size, line_bytes=128, assoc=assoc)
        for addr in prefill:  # weighted traffic: sets start non-empty
            vec.access(addr)
            ref.access(addr)
        vec.bulk_warm(warm)
        _replay_scalar(ref, warm)
        assert _cache_state(vec) == _cache_state(ref)
        assert _stats_tuple(vec) == _stats_tuple(ref)

    def test_large_sequence_takes_numpy_path(self):
        # >= 256 addresses: the array path, including per-set overflow
        # fallbacks where one set sees more tags than its ways.
        import random

        rng = random.Random(20260808)
        warm = [rng.randrange(0, 1 << 18) for _ in range(4000)]
        vec = Cache("vec", 8 * 1024, line_bytes=128, assoc=4)
        ref = Cache("ref", 8 * 1024, line_bytes=128, assoc=4)
        fast, scalar = vec.bulk_warm(warm)
        _replay_scalar(ref, warm)
        assert _cache_state(vec) == _cache_state(ref)
        assert _stats_tuple(vec) == (0.0, 0.0, 0.0)
        assert fast + scalar > 0 and scalar > 0  # both paths exercised

    def test_bypassed_cache_is_noop(self):
        cache = Cache("off", 0)
        assert cache.bulk_warm([1, 2, 3]) == (0, 0)
        assert _stats_tuple(cache) == (0.0, 0.0, 0.0)


class TestSoA:
    @pytest.mark.parametrize("network", ["cifarnet", "lstm"])
    def test_matches_flat_tuples(self, network):
        options = SimOptions().light()
        for kernel in compiled_network(network):
            decoded = decode_program(
                expand_program(
                    kernel.program, options.max_trips, options.max_outer_trips
                )
            )
            soa = decoded.soa()
            assert soa is decoded.soa()  # cached
            assert soa.n == decoded.n == len(decoded.instrs)
            gmem = []
            for i, row in enumerate(decoded.instrs):
                kind, _, dst, weight, _, pipe, interval, rf_reads, fetch = row
                assert soa.kind[i] == kind
                assert soa.dst[i] == dst
                assert soa.weight[i] == weight
                assert soa.pipe[i] == pipe
                assert soa.interval[i] == interval
                assert soa.rf_reads[i] == rf_reads
                assert bool(soa.fetch[i]) == bool(fetch)
                expect_ok = (
                    kind in (K_ALU, K_CTRL) and interval <= 1 and not fetch
                )
                assert bool(soa.batch_ok[i]) == expect_ok
                if kind == K_GMEM:
                    gmem.append(i)
            assert list(soa.gmem_pcs) == gmem

    @given(
        value=st.integers(min_value=0, max_value=1 << 30),
        pre=st.integers(min_value=1, max_value=512),
        div=st.integers(min_value=1, max_value=512),
        mod=st.one_of(st.none(), st.integers(min_value=1, max_value=512)),
        coef=st.integers(min_value=-64, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_term_apply_numpy_matches_scalar(self, value, pre, div, mod, coef):
        # The ptx precompute evaluates address terms on int64 arrays;
        # numpy floor semantics must equal Python's on the nonnegative
        # symbol values the simulator feeds in.
        term = Term("bx", coef, pre=pre, div=div, mod=mod)
        scalar = term.apply(value)
        vec = term.apply(np.array([value, value], dtype=np.int64))
        assert int(vec[0]) == int(vec[1]) == scalar
