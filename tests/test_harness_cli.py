"""Tests for ``repro harness list|run`` (the unified-pipeline CLI)."""

from __future__ import annotations

import json

from repro.cli import main


class TestHarnessList:
    def test_lists_all_experiments_with_run_counts(self, capsys):
        assert main(["harness", "list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 21
        assert any(line.startswith("hetero") and "6 runs" in line for line in lines)
        assert any(line.startswith("table1") and "analytic" in line for line in lines)
        assert any(line.startswith("fig02") and "28 runs" in line for line in lines)


class TestHarnessRun:
    def test_runs_selected_analytic_experiments(self, capsys):
        assert main(["harness", "run", "table2", "fig09", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig09" in out
        assert "2 experiments" in out and "0 failed" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["harness", "run", "fig99", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_json_dir_output(self, capsys, tmp_path):
        out_dir = tmp_path / "json"
        assert main(["harness", "run", "table4", "--no-cache",
                     "--json-dir", str(out_dir)]) == 0
        payload = json.loads((out_dir / "table4.json").read_text())
        assert payload["id"] == "table4"
        assert payload["series"] and payload["checks"]
        assert all(check["passed"] for check in payload["checks"])

    def test_json_stdout(self, capsys):
        assert main(["harness", "run", "table4", "--no-cache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload[0]["id"] == "table4"
        assert payload[0]["series"] and payload[0]["checks"]

    def test_chart_renders_series(self, capsys):
        assert main(["harness", "run", "fig09", "--no-cache", "--chart"]) == 0
        out = capsys.readouterr().out
        # The bar chart glyph only appears in rendered charts.
        assert "█" in out or "#" in out

    def test_cache_dir_fills_unified_store(self, capsys, tmp_path):
        cache = tmp_path / "store"
        assert main(["harness", "run", "fig16", "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "3 fresh, 0 cached" in first
        assert (cache / "runs").is_dir()
        assert main(["harness", "run", "fig16", "--cache-dir", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "0 fresh, 3 cached" in second
