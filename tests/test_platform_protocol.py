"""Conformance tests for the capability-based Platform protocol.

Every registered platform — GPU, FPGA or NPU — must expose the same
surface (``name``, ``kind``, ``memory_budget()``, ``compute_budget()``,
``make_config()``); the deprecated pre-protocol lookups must still work
behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.gpu.config import GpuConfig
from repro.platforms import (
    GP102,
    KINDS,
    S2NPU,
    Platform,
    get_platform,
    list_platforms,
    make_config,
    platform,
    register_platform,
    resolve_platform,
    unregister_platform,
)
from repro.platforms.accel import AcceleratorConfig


class TestProtocolConformance:
    @pytest.mark.parametrize("name", list_platforms())
    def test_every_registered_platform_conforms(self, name):
        entry = platform(name)
        assert isinstance(entry, Platform)
        assert entry.kind in KINDS
        assert entry.name.lower() == name
        memory = entry.memory_budget()
        assert memory.per_tile_bytes > 0
        assert memory.tiles > 0
        assert memory.dram_gb_per_s > 0
        assert memory.total_bytes == memory.per_tile_bytes * memory.tiles
        compute = entry.compute_budget()
        assert compute.peak_macs_per_cycle > 0
        assert compute.peak_gmacs_per_s > 0

    @pytest.mark.parametrize("name", list_platforms())
    def test_make_config_identity_and_budget_agreement(self, name):
        entry = platform(name)
        config = entry.make_config()
        # no overrides -> the canonical instance (identity caching works)
        assert make_config(name) is config
        assert config.name == entry.name
        if isinstance(config, AcceleratorConfig):
            assert config.tile_memory_bytes == entry.memory_budget().per_tile_bytes
            assert config.tiles == entry.memory_budget().tiles

    def test_kind_filters_partition_the_registry(self):
        by_kind = [set(list_platforms(kind=kind)) for kind in KINDS]
        union = set().union(*by_kind)
        assert union == set(list_platforms())
        assert sum(len(s) for s in by_kind) == len(union)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown platform kind"):
            list_platforms(kind="asic")

    def test_make_config_overrides(self):
        gpu = make_config("gp102", l1_kb=128)
        assert gpu.l1_size == 128 * 1024
        assert gpu is not GP102 and GP102.l1_size == 64 * 1024
        npu = make_config("s2npu", l1_kb=64)
        assert npu.tile_memory_bytes == 64 * 1024
        assert S2NPU.tile_memory_bytes == 128 * 1024
        named = make_config("s2npu", tiles=8)
        assert named.tiles == 8

    def test_negative_l1_rejected(self):
        with pytest.raises(ValueError):
            make_config("gp102", l1_kb=-1)
        with pytest.raises(ValueError):
            make_config("zcu102", l1_kb=-1)


class TestRegistration:
    def test_raw_configs_wrap_into_platforms(self):
        gpu = dataclasses.replace(GP102, name="TestGpu")
        npu = dataclasses.replace(S2NPU, name="TestNpu")
        try:
            wrapped_gpu = register_platform(gpu)
            wrapped_npu = register_platform(npu)
            assert isinstance(wrapped_gpu, Platform)
            assert wrapped_gpu.kind == "gpu"
            assert wrapped_npu.kind == "npu"
            assert make_config("testgpu") is gpu
            assert make_config("testnpu") is npu
        finally:
            unregister_platform("testgpu")
            unregister_platform("testnpu")

    def test_duplicate_registration_needs_replace(self):
        entry = dataclasses.replace(S2NPU, name="TestDup")
        try:
            register_platform(entry)
            with pytest.raises(ValueError, match="already registered"):
                register_platform(entry)
            register_platform(entry, replace=True)
        finally:
            unregister_platform("testdup")

    def test_builtins_cannot_be_unregistered(self):
        for name in ("gp102", "s2npu", "zcu102"):
            with pytest.raises(ValueError, match="built-in"):
                unregister_platform(name)


class TestDeprecatedShims:
    def test_get_platform_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="get_platform"):
            config = get_platform("gp102")
        assert config is GP102

    def test_resolve_platform_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="resolve_platform"):
            config = resolve_platform("gp102", l1_kb=128)
        assert config.l1_size == 128 * 1024

    def test_shims_reach_accelerators_too(self):
        with pytest.warns(DeprecationWarning):
            config = get_platform("s2npu")
        assert config is S2NPU

    def test_no_in_repo_callers_of_deprecated_api(self):
        """The engine/campaign/serve layers must be migrated: resolving
        a platform through the supported surface never warns."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.campaign.expand import CampaignPoint
            from repro.serve.devices import build_fleet

            build_fleet("gp102,s2npu")
            point = CampaignPoint(
                network="cifarnet", platform="s2npu", l1_kb=None,
                scheduler="gto", fidelity="light", batch=1,
            )
            assert point.resolved_l1_kb() == 128


class TestHeterogeneousFlow:
    def test_accelerator_configs_flow_through_runspec(self):
        from repro.gpu.config import SimOptions
        from repro.runs import RunSpec

        spec = RunSpec("cifarnet", make_config("zcu102"), SimOptions().light())
        assert "ZCU102" in spec.describe()
        assert spec.key() != RunSpec(
            "cifarnet", make_config("s2npu"), SimOptions().light()
        ).key()

    def test_gpu_platform_budgets_match_table2(self):
        gpu = platform("gp102")
        memory = gpu.memory_budget()
        assert memory.tiles == 28
        assert memory.per_tile_bytes == (64 + 96) * 1024
        assert gpu.compute_budget().peak_macs_per_cycle == 3584

    def test_config_is_gpu_or_accelerator(self):
        for name in list_platforms():
            config = make_config(name)
            assert isinstance(config, (GpuConfig, AcceleratorConfig))
