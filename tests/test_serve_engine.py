"""Engine tests on synthetic latency profiles (no GPU simulation).

Synthetic profiles make the arithmetic exact: ``latency_ms(b) = base +
per_item * b`` with a 1 GHz clock, so timeout/batching/scheduling
behaviour can be asserted to the millisecond.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.platforms import make_config, register_platform, unregister_platform
from repro.serve import (
    ClosedLoopWorkload,
    PoissonWorkload,
    ServeConfig,
    ServeDevice,
    ServeSim,
    TraceWorkload,
    build_fleet,
    run_serve,
)
from repro.serve.profiles import KernelTerm, LatencyProfile


def make_profile(
    network: str, platform: str, base_ms: float, per_item_ms: float = 0.0
) -> LatencyProfile:
    terms = (
        (KernelTerm(per_item_ms * 1e6, 1, 1, 1),) if per_item_ms else ()
    )
    return LatencyProfile(network, platform, 1.0, base_ms * 1e6, terms)


@pytest.fixture()
def fast_slow_fleet(tiny_gpu):
    fast = ServeDevice("fast#0", replace(tiny_gpu, name="Fast"))
    slow = ServeDevice("slow#0", replace(tiny_gpu, name="Slow"))
    profiles = {
        ("net", "Fast"): make_profile("net", "Fast", 5.0, 0.5),
        ("net", "Slow"): make_profile("net", "Slow", 80.0, 8.0),
    }
    return [fast, slow], profiles


class TestDeterminism:
    def test_same_seed_identical_stats(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=200.0, requests=500, networks=["net"])
        config = ServeConfig(seed=11, scheduler="latency-aware")
        first = run_serve(fleet, profiles, workload, config)
        second = run_serve(fleet, profiles, workload, config)
        assert first.to_dict() == second.to_dict()

    def test_different_seed_differs(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=200.0, requests=500, networks=["net"])
        first = run_serve(fleet, profiles, workload, ServeConfig(seed=1))
        second = run_serve(fleet, profiles, workload, ServeConfig(seed=2))
        assert first.to_dict() != second.to_dict()

    def test_closed_loop_deterministic(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = ClosedLoopWorkload(
            clients=4, requests=200, networks=["net"], think_ms=1.0
        )
        config = ServeConfig(seed=3)
        first = run_serve(fleet, profiles, workload, config)
        second = run_serve(fleet, profiles, workload, config)
        assert first.to_dict() == second.to_dict()
        assert first.completed == 200


class TestBatchingSemantics:
    def test_lone_request_waits_exactly_the_timeout(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = TraceWorkload([(0.0, "net")])
        config = ServeConfig(
            batch_timeout_ms=2.0, max_batch=4, scheduler="latency-aware"
        )
        stats = run_serve(fleet[:1], profiles, workload, config)
        # flush at 2.0 ms, then a batch-1 inference: 5 + 0.5 ms.
        assert stats.latency_max_ms == pytest.approx(2.0 + 5.5)

    def test_full_batch_launches_without_waiting(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = TraceWorkload([(0.0, "net")] * 4)
        config = ServeConfig(batch_timeout_ms=50.0, max_batch=4)
        stats = run_serve(fleet[:1], profiles, workload, config)
        # Launches at t=0 as soon as the 4th request lands: 5 + 4*0.5.
        assert stats.latency_max_ms == pytest.approx(7.0)
        assert stats.devices[0].batches == 1
        assert stats.devices[0].mean_batch == pytest.approx(4.0)

    def test_zero_timeout_serves_singly_when_idle(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = TraceWorkload([(0.0, "net"), (100.0, "net")])
        config = ServeConfig(batch_timeout_ms=0.0, max_batch=8)
        stats = run_serve(fleet[:1], profiles, workload, config)
        assert stats.devices[0].batches == 2
        assert stats.latency_max_ms == pytest.approx(5.5)


class TestAdmissionControl:
    def test_sheds_on_overflow_and_accounts_every_request(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=1000.0, requests=400, networks=["net"])
        config = ServeConfig(max_queue=4, max_batch=2, scheduler="round-robin")
        stats = run_serve([fleet[1]], profiles, workload, config)
        assert stats.shed > 0
        assert stats.offered == 400
        assert stats.completed + stats.shed == stats.offered

    def test_no_shed_below_capacity(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=50.0, requests=300, networks=["net"])
        stats = run_serve([fleet[0]], profiles, workload, ServeConfig())
        assert stats.shed == 0
        assert stats.completed == 300


class TestSchedulers:
    def test_latency_aware_beats_round_robin_p99(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=100.0, requests=2000, networks=["net"])
        rr = run_serve(
            fleet, profiles, workload, ServeConfig(seed=5, scheduler="round-robin")
        )
        la = run_serve(
            fleet, profiles, workload, ServeConfig(seed=5, scheduler="latency-aware")
        )
        # Round-robin sends half the traffic to the 16x-slower device.
        assert la.latency_p99_ms < rr.latency_p99_ms
        assert la.goodput_rps >= rr.goodput_rps

    def test_least_loaded_balances_queues(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=100.0, requests=500, networks=["net"])
        stats = run_serve(
            fleet, profiles, workload, ServeConfig(scheduler="least-loaded")
        )
        assert all(device.requests > 0 for device in stats.devices)

    def test_unknown_scheduler_raises(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=10.0, requests=5, networks=["net"])
        with pytest.raises(KeyError):
            run_serve(fleet, profiles, workload, ServeConfig(scheduler="fifo"))


class TestWorkloads:
    def test_trace_replay_is_exact(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        trace = [(1.0, "net"), (2.5, "net"), (40.0, "net")]
        stats = run_serve(
            [fleet[0]], profiles, TraceWorkload(trace), ServeConfig()
        )
        assert stats.offered == 3
        assert stats.completed == 3

    def test_closed_loop_respects_concurrency(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = ClosedLoopWorkload(
            clients=1, requests=20, networks=["net"], think_ms=0.0
        )
        stats = run_serve([fleet[0]], profiles, workload, ServeConfig(max_batch=8))
        # One client: every batch holds exactly one request.
        assert stats.completed == 20
        assert stats.devices[0].batches == 20


class TestFleetConstruction:
    def test_build_fleet_counts_and_names(self):
        fleet = build_fleet("gp102:2,tx1")
        assert [d.name for d in fleet] == ["gp102#0", "gp102#1", "tx1#0"]
        assert fleet[0].platform is make_config("gp102")

    def test_build_fleet_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            build_fleet("gp102:0")
        with pytest.raises(ValueError):
            build_fleet("gp102:x")
        with pytest.raises(ValueError):
            build_fleet("   ")
        with pytest.raises(KeyError):
            build_fleet("warpdrive")

    def test_registered_platform_is_servable(self, tiny_gpu):
        register_platform(replace(tiny_gpu, name="Toy"))
        try:
            fleet = build_fleet("toy:2")
            assert [d.name for d in fleet] == ["toy#0", "toy#1"]
            profiles = {("net", "Toy"): make_profile("net", "Toy", 1.0)}
            stats = run_serve(
                fleet, profiles, TraceWorkload([(0.0, "net")]), ServeConfig()
            )
            assert stats.completed == 1
        finally:
            unregister_platform("Toy")

    def test_register_platform_guards(self, tiny_gpu):
        with pytest.raises(ValueError):
            register_platform(replace(tiny_gpu, name="GP102"))
        with pytest.raises(ValueError):
            unregister_platform("gp102")


class TestEngineValidation:
    def test_empty_fleet_rejected(self, fast_slow_fleet):
        _, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=1.0, requests=1, networks=["net"])
        with pytest.raises(ValueError):
            ServeSim([], profiles, workload)

    def test_missing_profiles_rejected(self, fast_slow_fleet):
        fleet, _ = fast_slow_fleet
        workload = PoissonWorkload(rps=1.0, requests=1, networks=["net"])
        with pytest.raises(ValueError):
            ServeSim(fleet, {}, workload)

    def test_stats_shape(self, fast_slow_fleet):
        fleet, profiles = fast_slow_fleet
        workload = PoissonWorkload(rps=100.0, requests=50, networks=["net"])
        stats = run_serve(fleet, profiles, workload, ServeConfig(slo_ms=0.001))
        data = stats.to_dict()
        assert data["slo_violations"] == data["completed"]
        assert data["latency_ms"]["p99"] >= data["latency_ms"]["p50"]
        assert len(data["devices"]) == 2
        assert data["per_network"]["net"]["completed"] == stats.completed
        for device in data["devices"]:
            assert 0.0 <= device["utilization"] <= 1.0
