"""Unit tests for the memory system: coalescer, caches, MSHRs, DRAM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory import Cache, Dram, MemoryHierarchy, MshrFile, coalesce
from repro.memory.coalescer import TRANSACTION_BYTES


class TestCoalescer:
    def test_contiguous_warp_access_is_one_transaction(self):
        addrs = np.arange(32, dtype=np.int64) * 4 + 1024
        assert len(coalesce(addrs)) == 1

    def test_broadcast_is_one_transaction(self):
        addrs = np.full(32, 4096, dtype=np.int64)
        assert len(coalesce(addrs)) == 1

    def test_fully_strided_access_is_32_transactions(self):
        addrs = np.arange(32, dtype=np.int64) * 4096
        assert len(coalesce(addrs)) == 32

    def test_two_line_split(self):
        addrs = np.arange(32, dtype=np.int64) * 8  # 256 bytes
        assert len(coalesce(addrs)) == 2

    def test_vector_load_straddles_boundary(self):
        addrs = np.array([TRANSACTION_BYTES - 4], dtype=np.int64)
        assert len(coalesce(addrs, width_bytes=8)) == 2

    def test_empty_access(self):
        assert coalesce(np.array([], dtype=np.int64)).size == 0

    def test_transactions_are_line_aligned(self):
        addrs = np.array([5, 200, 999], dtype=np.int64)
        txs = coalesce(addrs)
        assert all(t % TRANSACTION_BYTES == 0 for t in txs)


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache("t", 4096)
        assert cache.access(0) is False
        assert cache.access(64) is True  # same 128B line
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_zero_size_bypasses(self):
        cache = Cache("t", 0)
        assert not cache.enabled
        for _ in range(4):
            assert cache.access(0) is False
        assert cache.stats.misses == 4

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 lines total, assoc 2 -> one set.
        cache = Cache("t", 256, line_bytes=128, assoc=2)
        cache.access(0)
        cache.access(128)
        cache.access(0)  # refresh line 0 -> line 128 is now LRU
        cache.access(256)  # evicts 128
        assert cache.access(0) is True
        assert cache.access(128) is False

    def test_no_allocate_on_store_probe(self):
        cache = Cache("t", 4096)
        cache.access(0, allocate=False)
        assert cache.access(0) is False  # still not resident

    def test_capacity_respected(self):
        cache = Cache("t", 1024, line_bytes=128, assoc=2)
        for i in range(64):
            cache.access(i * 128)
        assert cache.resident_lines() <= 1024 // 128

    def test_hashed_index_spreads_power_of_two_strides(self):
        # 4KB-strided rows (FC weight rows) must not all collide.
        cache = Cache("t", 64 * 1024, line_bytes=128, assoc=4)
        for lane in range(32):
            cache.access(lane * 4096)
        hits = sum(cache.access(lane * 4096) for lane in range(32))
        assert hits >= 24  # nearly all resident despite the stride

    def test_flush_clears_contents_but_keeps_stats(self):
        cache = Cache("t", 4096)
        cache.access(0)
        cache.flush()
        assert cache.resident_lines() == 0
        assert cache.stats.accesses == 1

    def test_weighted_stats(self):
        cache = Cache("t", 4096)
        cache.access(0, weight=10.0)
        assert cache.stats.misses == 10.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("t", -1)
        with pytest.raises(ValueError):
            Cache("t", 1024, line_bytes=100)


class TestMshr:
    def test_reserve_and_drain(self):
        mshr = MshrFile(entries=2)
        assert mshr.reserve(1, ready_cycle=100, now=0)
        assert mshr.reserve(2, ready_cycle=50, now=0)
        assert mshr.in_use == 2
        assert not mshr.reserve(3, ready_cycle=80, now=0)
        mshr.drain(60)
        assert mshr.in_use == 1
        assert mshr.reserve(3, ready_cycle=80, now=60)

    def test_merge_same_line(self):
        mshr = MshrFile(entries=1, max_merges=2)
        assert mshr.reserve(7, 100, 0)
        assert mshr.reserve(7, 100, 0)  # merge
        assert not mshr.reserve(7, 100, 0)  # merge limit
        assert mshr.in_use == 1

    def test_next_release_ordering(self):
        mshr = MshrFile(entries=4)
        mshr.reserve(1, 300, 0)
        mshr.reserve(2, 100, 0)
        assert mshr.next_release() == 100

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestDram:
    def test_latency_applied(self):
        dram = Dram(latency=100, bytes_per_cycle=128.0)
        assert dram.service(0) == 101

    def test_bandwidth_queues_requests(self):
        dram = Dram(latency=0, bytes_per_cycle=1.0)
        first = dram.service(0, size_bytes=128)
        second = dram.service(0, size_bytes=128)
        assert second >= first + 128

    def test_traffic_accounting(self):
        dram = Dram()
        dram.service(0, 128, weight=2.0)
        assert dram.bytes_served == 256
        assert dram.requests == 2.0


class TestHierarchy:
    def _hier(self, l1=32 * 1024, mshr=4):
        return MemoryHierarchy(l1_size=l1, l2_size=256 * 1024, mshr_entries=mshr)

    def test_l1_hit_faster_than_miss(self):
        hier = self._hier()
        addrs = np.array([0], dtype=np.int64)
        first = hier.load(0, addrs, 1.0)
        second = hier.load(0, addrs, 1.0)
        assert second < first

    def test_throttle_when_mshrs_full(self):
        hier = self._hier(mshr=2)
        # Two outstanding misses fill the file.
        hier.load(0, np.array([0], dtype=np.int64), 1.0)
        hier.load(0, np.array([128], dtype=np.int64), 1.0)
        ready = hier.load(0, np.array([256], dtype=np.int64), 1.0)
        assert ready is None
        assert hier.mshr.throttle_events == 1.0

    def test_throttle_leaves_no_side_effects(self):
        hier = self._hier(mshr=1)
        hier.load(0, np.array([0], dtype=np.int64), 1.0)
        before = hier.l2.stats.accesses
        ready = hier.load(0, np.array([128], dtype=np.int64), 1.0)
        assert ready is None
        assert hier.l2.stats.accesses == before

    def test_wide_access_on_empty_file_proceeds(self):
        # An access wider than the whole MSHR file must not deadlock.
        hier = self._hier(mshr=2)
        addrs = np.arange(8, dtype=np.int64) * 4096
        ready = hier.load(0, addrs, 1.0)
        assert ready is not None

    def test_no_l1_all_misses_counted(self):
        hier = self._hier(l1=0)
        addrs = np.array([0], dtype=np.int64)
        hier.load(0, addrs, 1.0)
        hier.load(1000, addrs, 1.0)
        assert hier.l1.stats.misses == 2.0
        assert hier.l2.stats.accesses == 2.0

    def test_store_is_write_through_no_allocate(self):
        hier = self._hier()
        addrs = np.array([512], dtype=np.int64)
        hier.store(0, addrs, 1.0)
        assert not hier.l1.contains(512)
        assert hier.l2.contains(512)

    def test_shared_and_const_latencies(self):
        hier = self._hier()
        assert hier.shared(10, 1.0) == 10 + hier.lat_shared
        ready, missed = hier.const(10, 1.0)
        assert missed  # cold
        ready2, missed2 = hier.const(ready, 1.0)
        assert not missed2
        assert ready2 - ready == hier.lat_const
