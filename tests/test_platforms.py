"""Tests for the platform configurations and the PynQ FPGA model."""

from __future__ import annotations

import pytest

from repro.core.suite import get_network
from repro.platforms import (
    GK210,
    GP102,
    PYNQ_Z1,
    TX1,
    PynqZ1Model,
    list_platforms,
    make_config,
)


class TestGpuConfigs:
    def test_registry(self):
        assert set(list_platforms()) == {
            "gk210", "tx1", "gp102", "zcu102", "s2npu", "pynqz1",
        }
        assert set(list_platforms(kind="gpu")) == {"gk210", "tx1", "gp102"}
        assert make_config("GK210") is GK210
        with pytest.raises(KeyError, match="unknown platform"):
            make_config("h100")

    def test_table2_core_counts(self):
        assert GK210.total_cuda_cores == 2880 - 384  # 13 of 15 SMX enabled
        assert TX1.total_cuda_cores == 256
        assert GP102.total_cuda_cores == 3584

    def test_table2_register_files(self):
        assert TX1.registers_per_sm == 32768
        assert GP102.registers_per_sm == 65536

    def test_l2_slice_divides_chip_l2(self):
        assert GP102.l2_slice_size == GP102.l2_size // GP102.num_sms

    def test_dram_share_positive(self):
        for config in (GK210, TX1, GP102):
            assert config.dram_bytes_per_cycle_per_sm > 0

    def test_with_l1_override(self):
        modified = GP102.with_l1(0)
        assert modified.l1_size == 0
        assert GP102.l1_size == 64 * 1024  # original untouched
        assert modified.num_sms == GP102.num_sms

    def test_mobile_vs_server_scale(self):
        assert TX1.dram_gb_per_s < GK210.dram_gb_per_s
        assert TX1.tdp_watts < GK210.tdp_watts


class TestPynqModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PynqZ1Model()

    def test_table4_parameters(self):
        assert PYNQ_Z1.logic_slices == 13300
        assert PYNQ_Z1.bram_bytes == 630 * 1024
        assert "Cortex-A9" in PYNQ_Z1.processor

    def test_cifarnet_runs(self, model):
        result = model.run_network(get_network("cifarnet"))
        assert result.time_s > 0
        assert PYNQ_Z1.static_watts <= result.peak_watts <= (
            PYNQ_Z1.static_watts + PYNQ_Z1.dynamic_watts_max
        )

    def test_energy_is_peak_times_time(self, model):
        result = model.run_network(get_network("cifarnet"))
        assert result.energy_j == pytest.approx(result.peak_watts * result.time_s)

    def test_large_layers_partition_into_subkernels(self, model):
        result = model.run_network(get_network("squeezenet"))
        assert any(layer.sub_kernels > 1 for layer in result.layers)

    def test_small_rnn_fits_bram(self, model):
        # The paper: GRU/LSTM fit on a PynQ-class device without splits.
        result = model.run_network(get_network("gru"))
        assert all(layer.sub_kernels == 1 for layer in result.layers)

    def test_squeezenet_slower_than_cifarnet(self, model):
        cifar = model.run_network(get_network("cifarnet"))
        squeeze = model.run_network(get_network("squeezenet"))
        assert squeeze.time_s > cifar.time_s

    def test_layer_times_sum_to_total(self, model):
        result = model.run_network(get_network("cifarnet"))
        assert result.time_s == pytest.approx(
            sum(layer.total_s for layer in result.layers)
        )
