"""Tests for the ``repro serve`` and ``repro cache`` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestServeCli:
    def test_light_poisson_run_json(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102,tx1",
            "--rps", "400", "--requests", "300", "--light",
            "--cache-dir", str(tmp_path), "--seed", "1", "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["scheduler"] == "latency-aware"
        assert stats["offered"] == 300
        assert stats["completed"] + stats["shed"] == 300
        assert len(stats["devices"]) == 2

    def test_seed_reproducibility(self, capsys, tmp_path):
        args = [
            "serve", "--networks", "gru", "--devices", "gp102",
            "--rps", "200", "--requests", "200", "--light",
            "--cache-dir", str(tmp_path), "--seed", "9", "--json",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_scheduler_comparison_text_and_report(self, capsys, tmp_path):
        report = tmp_path / "serve.md"
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102,tx1",
            "--rps", "300", "--requests", "200", "--light",
            "--cache-dir", str(tmp_path),
            "--scheduler", "round-robin,latency-aware",
            "--report", str(report),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "scheduler=round-robin" in out
        assert "scheduler=latency-aware" in out
        text = report.read_text()
        assert "| scheduler" in text and "round-robin" in text

    def test_extension_network_served(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--networks", "mobilenet", "--devices", "gp102",
            "--rps", "100", "--requests", "50", "--light",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["per_network"].get("mobilenet", {}).get("completed", 0) > 0

    def test_trace_workload(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([
            {"time_ms": 0.0, "network": "gru"},
            {"time_ms": 1.0, "network": "gru"},
            {"time_ms": 2.0, "network": "gru"},
        ]))
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102",
            "--arrival", "trace", "--trace", str(trace), "--light",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        assert json.loads(capsys.readouterr().out)["offered"] == 3

    def test_trace_without_path_errors(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--networks", "gru", "--arrival", "trace",
            "--light", "--cache-dir", str(tmp_path),
        ])
        assert exit_code == 2

    def test_unknown_network_errors(self, capsys):
        assert main(["serve", "--networks", "transformer"]) == 2

    def test_unknown_scheduler_errors(self, capsys):
        assert main([
            "serve", "--networks", "gru", "--scheduler", "fifo",
        ]) == 2

    def test_bad_fleet_errors(self, capsys):
        assert main([
            "serve", "--networks", "gru", "--devices", "warpdrive",
        ]) == 2


SCENARIO_TOML = """\
[scenario]
name = "cli-test"
seed = 3

[fleet]
devices = "gp102:2"

[serving]
scheduler = "least-loaded"
slo_ms = 30.0
max_queue = 16

[admission]
policy = "slo-aware"

[[tenants]]
name = "rt"
slo_ms = 5.0
[tenants.arrival]
kind = "poisson"
rps = 800.0
requests = 200
networks = ["gru"]

[[tenants]]
name = "bulk"
slo_ms = 60.0
priority = 2
[tenants.arrival]
kind = "closed"
clients = 4
requests = 100
networks = ["gru"]
think_ms = 1.0
"""


class TestScenarioCli:
    def write_scenario(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text(SCENARIO_TOML)
        return path

    def test_scenario_json_schema(self, capsys, tmp_path):
        path = self.write_scenario(tmp_path)
        exit_code = main([
            "serve", "--scenario", str(path), "--light",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["scheduler"] == "least-loaded"
        assert stats["offered"] == 300
        # The documented per-tenant schema: SLO attainment and
        # cost-per-request for every declared tenant.
        assert set(stats["per_tenant"]) == {"rt", "bulk"}
        for tenant in stats["per_tenant"].values():
            assert {"slo_attainment", "goodput_ratio",
                    "cost_per_request_j", "shed"} <= set(tenant)
        assert {"total_j", "cost_per_request_j"} <= set(stats["energy"])
        assert sum(stats["shed_reasons"].values()) == stats["shed"]

    def test_scenario_loop_override_is_equivalent(self, capsys, tmp_path):
        path = self.write_scenario(tmp_path)
        args = [
            "serve", "--scenario", str(path), "--light",
            "--cache-dir", str(tmp_path), "--json",
        ]
        assert main(args + ["--loop", "heap"]) == 0
        heap = json.loads(capsys.readouterr().out)
        assert main(args + ["--loop", "fast"]) == 0
        fast = json.loads(capsys.readouterr().out)
        assert fast == heap

    def test_scenario_text_output_mentions_tenants(self, capsys, tmp_path):
        path = self.write_scenario(tmp_path)
        assert main([
            "serve", "--scenario", str(path), "--light",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "rt" in out and "bulk" in out

    def test_scenario_flags_conflict_with_workload_flags(self, tmp_path):
        path = self.write_scenario(tmp_path)
        # --scenario owns the workload; a bad scenario path must fail
        # loudly rather than fall back to flag defaults.
        assert main([
            "serve", "--scenario", str(tmp_path / "missing.toml"),
            "--light", "--cache-dir", str(tmp_path),
        ]) == 2

    def test_admission_flag_without_scenario(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102",
            "--rps", "2000", "--requests", "400", "--light",
            "--cache-dir", str(tmp_path), "--slo-ms", "2",
            "--queue", "8", "--admission", "slo-aware", "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["shed"] > 0
        assert set(stats["shed_reasons"]) <= {"overflow", "priority", "slo"}


class TestCacheCli:
    def test_stats_empty_dir(self, capsys, tmp_path):
        exit_code = main([
            "cache", "stats", "--cache-dir", str(tmp_path / "nope"), "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0 and stats["bytes"] == 0

    def test_stats_then_clear_roundtrip(self, capsys, tmp_path):
        # Populate the cache through a simulation run.
        assert main([
            "simulate", "gru", "--light", "--cache-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0
        assert stats["bytes"] > 0
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_stats_text_output(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache dir:" in out and "entries:" in out
