"""Tests for the ``repro serve`` and ``repro cache`` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestServeCli:
    def test_light_poisson_run_json(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102,tx1",
            "--rps", "400", "--requests", "300", "--light",
            "--cache-dir", str(tmp_path), "--seed", "1", "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["scheduler"] == "latency-aware"
        assert stats["offered"] == 300
        assert stats["completed"] + stats["shed"] == 300
        assert len(stats["devices"]) == 2

    def test_seed_reproducibility(self, capsys, tmp_path):
        args = [
            "serve", "--networks", "gru", "--devices", "gp102",
            "--rps", "200", "--requests", "200", "--light",
            "--cache-dir", str(tmp_path), "--seed", "9", "--json",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_scheduler_comparison_text_and_report(self, capsys, tmp_path):
        report = tmp_path / "serve.md"
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102,tx1",
            "--rps", "300", "--requests", "200", "--light",
            "--cache-dir", str(tmp_path),
            "--scheduler", "round-robin,latency-aware",
            "--report", str(report),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "scheduler=round-robin" in out
        assert "scheduler=latency-aware" in out
        text = report.read_text()
        assert "| scheduler" in text and "round-robin" in text

    def test_extension_network_served(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--networks", "mobilenet", "--devices", "gp102",
            "--rps", "100", "--requests", "50", "--light",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["per_network"].get("mobilenet", {}).get("completed", 0) > 0

    def test_trace_workload(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([
            {"time_ms": 0.0, "network": "gru"},
            {"time_ms": 1.0, "network": "gru"},
            {"time_ms": 2.0, "network": "gru"},
        ]))
        exit_code = main([
            "serve", "--networks", "gru", "--devices", "gp102",
            "--arrival", "trace", "--trace", str(trace), "--light",
            "--cache-dir", str(tmp_path), "--json",
        ])
        assert exit_code == 0
        assert json.loads(capsys.readouterr().out)["offered"] == 3

    def test_trace_without_path_errors(self, capsys, tmp_path):
        exit_code = main([
            "serve", "--networks", "gru", "--arrival", "trace",
            "--light", "--cache-dir", str(tmp_path),
        ])
        assert exit_code == 2

    def test_unknown_network_errors(self, capsys):
        assert main(["serve", "--networks", "transformer"]) == 2

    def test_unknown_scheduler_errors(self, capsys):
        assert main([
            "serve", "--networks", "gru", "--scheduler", "fifo",
        ]) == 2

    def test_bad_fleet_errors(self, capsys):
        assert main([
            "serve", "--networks", "gru", "--devices", "warpdrive",
        ]) == 2


class TestCacheCli:
    def test_stats_empty_dir(self, capsys, tmp_path):
        exit_code = main([
            "cache", "stats", "--cache-dir", str(tmp_path / "nope"), "--json",
        ])
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0 and stats["bytes"] == 0

    def test_stats_then_clear_roundtrip(self, capsys, tmp_path):
        # Populate the cache through a simulation run.
        assert main([
            "simulate", "gru", "--light", "--cache-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0
        assert stats["bytes"] > 0
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_stats_text_output(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache dir:" in out and "entries:" in out
