"""The ``repro campaign`` CLI: run, compare, list, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SPEC_TOML = """\
[campaign]
name = "cli-t"
fidelity = "light"

[axes]
network = ["gru"]
l1_kb = [16, 64]
batch = [1, 4]
"""


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "c.toml"
    path.write_text(SPEC_TOML)
    return path


def run_cli(*argv) -> int:
    return main([str(arg) for arg in argv])


class TestCampaignList:
    def test_list_expands_without_simulating(self, spec_path, tmp_path, capsys):
        code = run_cli("campaign", "list", spec_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "4 points" in out and "2 unique" in out
        assert not list(tmp_path.glob("*.json"))  # nothing written

    def test_list_json(self, spec_path, capsys):
        assert run_cli("campaign", "list", spec_path, "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["points"] == 4
        assert doc["unique_runs"] == 2
        assert doc["axes"]["l1_kb"] == [16, 64]


class TestCampaignRun:
    def test_run_writes_frontier_and_result(self, spec_path, tmp_path, capsys):
        frontier_path = tmp_path / "frontier.json"
        output_path = tmp_path / "result.json"
        code = run_cli(
            "campaign", "run", spec_path,
            "--cache-dir", tmp_path / "cache",
            "--frontier-out", frontier_path,
            "--output", output_path,
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 unique runs" in out and "2 fresh" in out
        frontier = json.loads(frontier_path.read_text())
        assert frontier["campaign"] == "cli-t"
        assert frontier["points"]
        result = json.loads(output_path.read_text())
        assert result["execution"]["fresh"] == 2

    def test_warm_rerun_simulates_nothing(self, spec_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert run_cli("campaign", "run", spec_path, "--cache-dir", cache) == 0
        capsys.readouterr()
        assert run_cli("campaign", "run", spec_path, "--cache-dir", cache) == 0
        assert "0 fresh, 2 cached" in capsys.readouterr().out

    def test_bad_spec_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[campaign]\nname = "x"\n[axes]\nnetwork = ["nope"]\n')
        assert run_cli("campaign", "run", bad, "--no-cache") == 2
        assert "nope" in capsys.readouterr().err

    def test_missing_spec_file_is_a_usage_error(self, tmp_path, capsys):
        assert run_cli("campaign", "run", tmp_path / "ghost.toml") == 2
        assert "cannot read" in capsys.readouterr().err


class TestCampaignCompare:
    def test_compare_requires_golden(self, spec_path, capsys):
        assert run_cli("campaign", "compare", spec_path, "--no-cache") == 2
        assert "--golden" in capsys.readouterr().err

    def test_compare_against_own_frontier_passes(self, spec_path, tmp_path, capsys):
        cache, golden = tmp_path / "cache", tmp_path / "golden.json"
        run_cli("campaign", "run", spec_path,
                "--cache-dir", cache, "--frontier-out", golden)
        capsys.readouterr()
        code = run_cli("campaign", "compare", spec_path,
                       "--cache-dir", cache, "--golden", golden)
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_fails_on_perturbed_golden(self, spec_path, tmp_path, capsys):
        cache, golden = tmp_path / "cache", tmp_path / "golden.json"
        run_cli("campaign", "run", spec_path,
                "--cache-dir", cache, "--frontier-out", golden)
        payload = json.loads(golden.read_text())
        payload["points"][0]["metrics"]["latency_ms"] *= 0.5
        golden.write_text(json.dumps(payload))
        capsys.readouterr()
        code = run_cli("campaign", "compare", spec_path,
                       "--cache-dir", cache, "--golden", golden)
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_json_reports_execution_too(self, spec_path, tmp_path, capsys):
        cache, golden = tmp_path / "cache", tmp_path / "golden.json"
        run_cli("campaign", "run", spec_path,
                "--cache-dir", cache, "--frontier-out", golden)
        capsys.readouterr()
        code = run_cli("campaign", "compare", spec_path, "--json",
                       "--cache-dir", cache, "--golden", golden)
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["compare"]["ok"] is True
        assert doc["execution"]["fresh"] == 0

    def test_unreadable_golden_is_a_usage_error(self, spec_path, tmp_path, capsys):
        code = run_cli("campaign", "compare", spec_path, "--no-cache",
                       "--golden", tmp_path / "ghost.json")
        assert code == 2
        assert "golden" in capsys.readouterr().err
