"""Tests for the tiling/partitioning mapper.

The two construction invariants are property-tested with hypothesis
over randomized layer geometries and budgets:

* **budget feasibility** — no tile's footprint exceeds the device's
  per-tile memory, on any ladder step;
* **stitching** — per input-channel group, the tiles' output ranges
  partition the layer's full output exactly (no gap, no overlap).

Plus unit coverage of the fallback ladder's step selection, the
execution model's contract with the serving latency profiles, and the
executor integration (accelerator runs cache like GPU runs).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layers.defs import FC, Conv2D, DepthwiseConv2D, Pool2D
from repro.core.suite import get_network
from repro.gpu.config import SimOptions
from repro.mapping import (
    MappingError,
    map_layer,
    map_network,
    run_mapped_network,
)
from repro.platforms import PYNQ_Z1_MAPPED, S2NPU, ZCU102
from repro.platforms.accel import AcceleratorConfig

DEVICES = (ZCU102, S2NPU, PYNQ_Z1_MAPPED)

#: A deliberately tiny device that forces deep ladder fallbacks.
TINY = dataclasses.replace(
    S2NPU, name="Tiny", tiles=4, tile_memory_bytes=24 * 1024
)


def _assert_budget(plan, config: AcceleratorConfig) -> None:
    assert plan.tiles, f"{plan.node_name}: no tiles emitted"
    for tile in plan.tiles:
        assert tile.footprint_bytes <= config.tile_memory_bytes, (
            f"{plan.node_name} [{plan.strategy}] tile {tile.index}: "
            f"{tile.footprint_bytes} > {config.tile_memory_bytes}"
        )


def _assert_stitches(plan) -> None:
    """Tiles of each input group partition the coverage grid exactly."""
    c_extent, r_extent = plan.coverage
    groups: dict[int, list] = {}
    for tile in plan.tiles:
        groups.setdefault(tile.in_group, []).append(tile)
    assert len(groups) == plan.tiles[0].n_in_groups
    for tiles in groups.values():
        covered = 0
        seen = set()
        for tile in tiles:
            cells = tile.channels.size * tile.rows.size
            rect = (
                tile.channels.start, tile.channels.stop,
                tile.rows.start, tile.rows.stop,
            )
            assert rect not in seen, f"duplicate tile rect {rect}"
            seen.add(rect)
            # no overlap: rectangles on a grid are disjoint iff they
            # disagree on at least one axis interval
            for other in seen - {rect}:
                c_overlap = rect[0] < other[1] and other[0] < rect[1]
                r_overlap = rect[2] < other[3] and other[2] < rect[3]
                assert not (c_overlap and r_overlap), (
                    f"{plan.node_name}: tiles overlap: {rect} vs {other}"
                )
            covered += cells
        expected = max(c_extent, 1) * max(r_extent, 1)
        assert covered == expected, (
            f"{plan.node_name} [{plan.strategy}]: covered {covered} "
            f"of {expected} output cells"
        )


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
class TestMapperProperties:
    @given(
        ci=st.integers(1, 64),
        co=st.integers(1, 96),
        hw=st.integers(3, 40),
        k=st.sampled_from((1, 3, 5)),
        stride=st.sampled_from((1, 2)),
        device=st.sampled_from(DEVICES + (TINY,)),
    )
    @settings(max_examples=120, deadline=None)
    def test_conv_plans_respect_budget_and_stitch(
        self, ci, co, hw, k, stride, device
    ):
        layer = Conv2D(out_channels=co, kernel=k, stride=stride, pad=k // 2)
        plan = map_layer("conv", layer, [(ci, hw, hw)], device)
        _assert_budget(plan, device)
        _assert_stitches(plan)
        assert plan.coverage == (
            layer.out_shape([(ci, hw, hw)])[0],
            layer.out_shape([(ci, hw, hw)])[1],
        )

    @given(
        in_n=st.integers(1, 8192),
        out_n=st.integers(1, 4096),
        device=st.sampled_from(DEVICES + (TINY,)),
    )
    @settings(max_examples=120, deadline=None)
    def test_fc_plans_respect_budget_and_stitch(self, in_n, out_n, device):
        layer = FC(out_features=out_n)
        plan = map_layer("fc", layer, [(in_n,)], device)
        _assert_budget(plan, device)
        _assert_stitches(plan)
        assert plan.coverage == (out_n, 1)

    @given(
        c=st.integers(1, 128),
        hw=st.integers(2, 32),
        device=st.sampled_from(DEVICES + (TINY,)),
    )
    @settings(max_examples=60, deadline=None)
    def test_pool_plans_respect_budget_and_stitch(self, c, hw, device):
        layer = Pool2D(kind="max")
        plan = map_layer("pool", layer, [(c, hw, hw)], device)
        _assert_budget(plan, device)
        _assert_stitches(plan)

    @given(device=st.sampled_from(DEVICES))
    @settings(max_examples=3, deadline=None)
    def test_whole_network_budget_feasible(self, device):
        plan = map_network("cifarnet", device)
        assert plan.max_footprint_bytes <= device.tile_memory_bytes
        for layer_plan in plan.layers:
            if layer_plan.tiles:
                _assert_budget(layer_plan, device)
                _assert_stitches(layer_plan)


# ----------------------------------------------------------------------
# ladder behaviour
# ----------------------------------------------------------------------
class TestFallbackLadder:
    def test_step1_whole_layer(self):
        layer = Conv2D(out_channels=8, kernel=3, pad=1)
        plan = map_layer("c", layer, [(3, 8, 8)], ZCU102)
        assert plan.strategy == "whole" and plan.step == 1
        assert plan.n_tiles == 1

    def test_step2_output_channel_split_prefers_mac_row_multiples(self):
        # large channel count, small maps: channels split, rows whole
        layer = Conv2D(out_channels=512, kernel=3, pad=1)
        plan = map_layer("c", layer, [(64, 14, 14)], S2NPU)
        assert plan.strategy == "split-out-channels" and plan.step == 2
        chunk = plan.tiles[0].channels.size
        assert chunk >= S2NPU.mac_rows
        assert chunk % S2NPU.mac_rows == 0
        assert plan.tiles[0].utilization == 1.0

    def test_step3_row_split(self):
        # big activation maps force row splitting on the NPU
        layer = Conv2D(out_channels=64, kernel=3, pad=1)
        plan = map_layer("c", layer, [(64, 112, 112)], S2NPU)
        assert plan.strategy == "split-rows" and plan.step == 3
        assert all(t.rows.size < 112 for t in plan.tiles)

    def test_step4_input_channel_split_accumulates(self):
        # VGG conv1_2-scale layer: even one output channel at one row
        # exceeds 128 KB unless input channels split
        layer = Conv2D(out_channels=64, kernel=3, pad=1)
        plan = map_layer("c", layer, [(64, 224, 224)], S2NPU)
        assert plan.strategy == "split-in-channels" and plan.step == 4
        assert plan.accumulate
        assert plan.tiles[0].n_in_groups > 1

    def test_depthwise_maps_without_input_split(self):
        layer = DepthwiseConv2D(kernel=3, pad=1)
        plan = map_layer("dw", layer, [(256, 28, 28)], S2NPU)
        assert not plan.accumulate
        _assert_budget(plan, S2NPU)
        _assert_stitches(plan)

    def test_infeasible_budget_raises(self):
        hopeless = dataclasses.replace(
            S2NPU, name="Hopeless", tile_memory_bytes=64
        )
        layer = Conv2D(out_channels=8, kernel=3, pad=1)
        with pytest.raises(MappingError):
            map_layer("c", layer, [(3, 32, 32)], hopeless)

    def test_mapping_is_deterministic(self):
        first = map_network("squeezenet", S2NPU)
        second = map_network("squeezenet", S2NPU)
        assert first == second

    def test_signature_merges_identical_layers(self):
        plan = map_network("squeezenet", ZCU102)
        signatures = [lp.signature() for lp in plan.layers if lp.tiles]
        assert len(set(signatures)) < len(signatures)


# ----------------------------------------------------------------------
# execution model
# ----------------------------------------------------------------------
class TestMappedExecution:
    def test_profile_reproduces_batch1_latency(self):
        from repro.serve.profiles import profile_from_result

        for device in DEVICES:
            result = run_mapped_network("cifarnet", device)
            profile = profile_from_result(result)
            assert profile.latency_ms(1) == pytest.approx(
                result.total_time_ms, rel=1e-12
            )

    def test_total_time_includes_launch_overhead(self):
        result = run_mapped_network("cifarnet", S2NPU)
        overhead = len(result.kernels) * S2NPU.launch_overhead_cycles
        assert result.total_cycles > overhead

    def test_graph_and_name_entry_points_agree(self):
        by_name = run_mapped_network("gru", S2NPU)
        by_graph = run_mapped_network(get_network("gru"), S2NPU)
        assert by_name.total_cycles == by_graph.total_cycles

    def test_executor_caches_accelerator_runs(self, tmp_path):
        from repro.runs import Executor, ResultStore, RunSpec

        spec = RunSpec("gru", S2NPU, SimOptions().light())
        cold = Executor(ResultStore(tmp_path))
        first = cold.run(spec)
        assert cold.fresh == 1
        warm = Executor(ResultStore(tmp_path))
        second = warm.run(spec)
        assert warm.fresh == 0 and warm.hits == 1
        assert second.total_cycles == first.total_cycles

    def test_mapper_version_folds_into_run_key(self):
        from repro.runs import RunSpec

        bumped = dataclasses.replace(S2NPU, mapper_version="tile-test")
        options = SimOptions().light()
        assert (
            RunSpec("gru", S2NPU, options).key()
            != RunSpec("gru", bumped, options).key()
        )

    def test_wattsup_meters_accelerators(self):
        from repro.power import WattsupMeter

        result = run_mapped_network("cifarnet", S2NPU)
        measurement = WattsupMeter(S2NPU).measure(result)
        assert 0 < measurement.peak_watts <= S2NPU.tdp_watts
        assert measurement.energy_j > 0
