"""Tests for SLO-aware admission control (``repro.serve.admission``).

The headline property: the SLO feasibility gate is conservative in the
client's favour — on an **idle** device, any request whose batch-1
latency plus the batching timeout fits its SLO is admitted.  With
``max_batch == 1`` (no co-batching slack) that sharpens to: admission
never sheds a request an idle fleet would have served within SLO.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    MultiTenantWorkload,
    PoissonWorkload,
    ServeConfig,
    ServeDevice,
    ServeSim,
    Tenant,
    make_admission,
)
from repro.serve.admission import (
    SHED_OVERFLOW,
    SHED_PRIORITY,
    SHED_SLO,
    NullAdmission,
    SloAwareAdmission,
)
from repro.serve.batching import Request
from repro.serve.devices import DeviceState
from repro.serve.profiles import KernelTerm, LatencyProfile


def make_profile(network, platform, base_ms, per_item_ms=0.0):
    terms = (
        (KernelTerm(per_item_ms * 1e6, 1, 1, 1),) if per_item_ms else ()
    )
    return LatencyProfile(network, platform, 1.0, base_ms * 1e6, terms)


def idle_state(tiny_gpu, base_ms, max_batch=1, timeout_ms=0.0):
    profile = make_profile("net", "Dev", base_ms, 0.1)
    device = ServeDevice("dev#0", replace(tiny_gpu, name="Dev"))
    return DeviceState(
        device, {"net": profile}, max_batch, timeout_ms, max_queue=64,
    )


class TestRegistry:
    def test_make_admission_by_name(self):
        assert isinstance(make_admission("none"), NullAdmission)
        assert isinstance(make_admission("slo-aware"), SloAwareAdmission)

    def test_unknown_policy_names_available(self):
        with pytest.raises(KeyError, match="slo-aware"):
            make_admission("optimistic")

    def test_bad_kwargs_rejected(self):
        with pytest.raises(ValueError, match="priority_fill"):
            SloAwareAdmission(priority_fill=())
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            SloAwareAdmission(priority_fill=(1.0, 0.0))
        with pytest.raises(ValueError, match="slo_slack"):
            SloAwareAdmission(slo_slack=-0.1)


class TestClassGate:
    def test_null_policy_admits_everything(self):
        policy = NullAdmission()
        request = Request(0, "net", 0.0)
        tenant = Tenant("t", slo_ms=1.0, priority=9)
        assert policy.assess(request, tenant, 10**9, 1, 0.0) is None

    def test_priority_fill_ordering(self):
        policy = SloAwareAdmission(priority_fill=(1.0, 0.75, 0.5))
        request = Request(0, "net", 0.0)
        capacity = 100

        def shed_at(priority, pending):
            tenant = Tenant("t", slo_ms=50.0, priority=priority)
            return policy.assess(request, tenant, pending, capacity, 0.0)

        # At 60% fill only the p>=2 classes shed.
        assert shed_at(0, 60) is None
        assert shed_at(1, 60) is None
        assert shed_at(2, 60) == SHED_PRIORITY
        # At 80% fill p1 joins them; p0 sheds only at hard overflow.
        assert shed_at(0, 80) is None
        assert shed_at(1, 80) == SHED_PRIORITY
        assert shed_at(0, 100) == SHED_PRIORITY

    def test_priorities_beyond_tuple_share_last_threshold(self):
        policy = SloAwareAdmission(priority_fill=(1.0, 0.5))
        request = Request(0, "net", 0.0)
        t9 = Tenant("t", slo_ms=50.0, priority=9)
        assert policy.assess(request, t9, 50, 100, 0.0) == SHED_PRIORITY
        assert policy.assess(request, t9, 49, 100, 0.0) is None

    def test_zero_capacity_is_overflow(self):
        policy = SloAwareAdmission()
        request = Request(0, "net", 0.0)
        tenant = Tenant("t", slo_ms=50.0)
        assert policy.assess(request, tenant, 0, 0, 0.0) == SHED_OVERFLOW


class TestSloGate:
    def test_sheds_doomed_request_on_busy_device(self, tiny_gpu):
        policy = SloAwareAdmission()
        state = idle_state(tiny_gpu, base_ms=5.0)
        state.busy = True
        state.busy_until = 100.0
        request = Request(0, "net", 0.0)
        tenant = Tenant("t", slo_ms=10.0)
        assert policy.place(request, tenant, state, 0.0) == SHED_SLO

    def test_admits_feasible_request_on_busy_device(self, tiny_gpu):
        policy = SloAwareAdmission()
        state = idle_state(tiny_gpu, base_ms=5.0)
        state.busy = True
        state.busy_until = 2.0
        request = Request(0, "net", 0.0)
        tenant = Tenant("t", slo_ms=50.0)
        assert policy.place(request, tenant, state, 0.0) is None

    @settings(max_examples=100, deadline=None)
    @given(
        base_ms=st.floats(0.01, 50.0),
        slo_ms=st.floats(0.01, 200.0),
        arrival_ms=st.floats(0.0, 1e6),
        slo_slack=st.floats(0.0, 4.0),
    )
    def test_never_sheds_feasible_request_on_idle_fleet(
        self, tiny_gpu, base_ms, slo_ms, arrival_ms, slo_slack
    ):
        """With max_batch=1 the feasibility estimate on an idle device
        is exactly latency(1); any request with latency(1) <= slo must
        be admitted, whatever the slack knob says."""
        policy = SloAwareAdmission(slo_slack=slo_slack)
        state = idle_state(tiny_gpu, base_ms, max_batch=1, timeout_ms=3.0)
        latency = state.profiles["net"].latency_ms(1)
        request = Request(0, "net", arrival_ms)
        tenant = Tenant("t", slo_ms=slo_ms)
        verdict = policy.place(request, tenant, state, arrival_ms)
        if latency <= slo_ms:
            assert verdict is None
        else:
            assert verdict == SHED_SLO


class TestEngineIntegration:
    def fleet_profiles(self, tiny_gpu):
        fleet = [
            ServeDevice(f"dev#{i}", replace(tiny_gpu, name="Dev"))
            for i in range(2)
        ]
        profiles = {("net", "Dev"): make_profile("net", "Dev", 2.0, 0.4)}
        return fleet, profiles

    def run(self, tiny_gpu, admission):
        fleet, profiles = self.fleet_profiles(tiny_gpu)
        config = ServeConfig(
            slo_ms=6.0, max_batch=2, max_queue=8,
            scheduler="least-loaded", seed=11, admission=admission,
        )
        workload = MultiTenantWorkload([
            (Tenant("gold", slo_ms=25.0, priority=0),
             PoissonWorkload(500.0, 300, ["net"])),
            (Tenant("bronze", slo_ms=6.0, priority=2),
             PoissonWorkload(500.0, 300, ["net"])),
        ])
        return ServeSim(fleet, profiles, workload, config).run("fast")

    def test_shed_reasons_populated_and_consistent(self, tiny_gpu):
        stats = self.run(tiny_gpu, "slo-aware")
        assert stats.shed > 0
        assert sum(stats.shed_reasons.values()) == stats.shed
        assert set(stats.shed_reasons) <= {
            SHED_OVERFLOW, SHED_PRIORITY, SHED_SLO
        }
        # The low-priority tight-SLO tenant bears the brunt.
        per_tenant = stats.per_tenant
        assert per_tenant["bronze"].shed > per_tenant["gold"].shed

    def test_admission_beats_null_policy_on_attainment(self, tiny_gpu):
        """Shedding doomed work early must not *hurt* the completed
        requests' SLO attainment relative to admitting everything."""
        gated = self.run(tiny_gpu, "slo-aware")
        ungated = self.run(tiny_gpu, "none")
        assert gated.slo_attainment >= ungated.slo_attainment

    def test_shed_excluded_from_latency_but_in_goodput(self, tiny_gpu):
        stats = self.run(tiny_gpu, "slo-aware")
        for tenant in stats.per_tenant.values():
            assert tenant.offered == tenant.completed + tenant.shed
            # Goodput is over *offered* (sheds count against it);
            # attainment is over completed only.
            good = round(tenant.slo_attainment * tenant.completed)
            assert tenant.goodput_ratio == pytest.approx(
                good / tenant.offered, abs=1e-9
            )
            if tenant.completed:
                # Percentiles come from completed requests only, so
                # they stay finite and below the max completed latency.
                assert 0.0 <= tenant.latency_p50_ms <= tenant.latency_max_ms
