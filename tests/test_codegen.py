"""Tests for the CUDA/OpenCL source emitters and the suite exporter."""

from __future__ import annotations

import pytest

from repro.codegen import (
    OPENCL_NETWORKS,
    cuda_network_source,
    export_suite,
    opencl_network_source,
)
from repro.core.suite import list_networks
from repro.kernels.compile import compiled_network


def _balanced(source: str) -> bool:
    depth = 0
    for ch in source:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


class TestCudaEmission:
    @pytest.mark.parametrize("name", list_networks())
    def test_source_well_formed(self, name):
        source = cuda_network_source(name)
        assert _balanced(source), f"unbalanced braces in {name}"
        assert 'extern "C" __global__ void' in source

    @pytest.mark.parametrize("name", list_networks())
    def test_one_kernel_per_distinct_launch(self, name):
        source = cuda_network_source(name)
        distinct = {
            k.name.replace("/", "_").replace("-", "_").replace(" ", "_")
            .replace("(", "_").replace(")", "_").replace("=", "_")
            for k in compiled_network(name)
        }
        assert source.count("__global__ void") >= min(len(distinct), 1)

    def test_conv_kernel_contains_real_math(self):
        source = cuda_network_source("cifarnet")
        assert "weight[((oc *" in source
        assert "fmaxf" in source  # fused ReLU

    def test_launch_geometry_documented(self):
        source = cuda_network_source("alexnet")
        assert "grid(96, 1, 1) block(32, 32, 1)" in source

    def test_lstm_kernel_has_three_gates_plus_candidate(self):
        source = cuda_network_source("lstm")
        for gate in ("u_i", "u_f", "u_o", "u_g"):
            assert gate in source

    def test_no_cudnn_or_framework_calls(self):
        for name in list_networks():
            source = cuda_network_source(name)
            for call in ("cudnnConvolutionForward", "cudnnCreate", "cublasSgemm",
                         "cudnn.h", "cublas_v2.h"):
                assert call not in source, call


class TestOpenClEmission:
    def test_coverage_matches_paper(self):
        assert set(OPENCL_NETWORKS) == {"cifarnet", "alexnet"}

    @pytest.mark.parametrize("name", OPENCL_NETWORKS)
    def test_source_well_formed(self, name):
        source = opencl_network_source(name)
        assert _balanced(source)
        assert "__kernel void" in source
        assert "get_local_id(0)" in source

    @pytest.mark.parametrize("name", OPENCL_NETWORKS)
    def test_no_cuda_residue(self, name):
        source = opencl_network_source(name)
        for token in ("threadIdx", "blockIdx", "__global__", "fmaxf", "expf"):
            assert token not in source, token

    def test_unsupported_network_rejected(self):
        with pytest.raises(ValueError, match="OpenCL only"):
            opencl_network_source("resnet")


class TestExporter:
    def test_export_layout(self, tmp_path):
        written = export_suite(tmp_path, names=("cifarnet", "gru"))
        assert (tmp_path / "cifarnet" / "cifarnet.cu").exists()
        assert (tmp_path / "cifarnet" / "cifarnet.cl").exists()
        assert (tmp_path / "gru" / "gru.cu").exists()
        assert not (tmp_path / "gru" / "gru.cl").exists()  # no OpenCL GRU
        assert all(p.exists() for p in written)

    def test_weight_manifest_lists_layer_files(self, tmp_path):
        export_suite(tmp_path, names=("cifarnet",))
        manifest = (tmp_path / "cifarnet" / "weights.manifest").read_text()
        assert "conv1.bin" in manifest
        assert "fc2.bin" in manifest
        sizes = [int(line.split()[1]) for line in manifest.strip().splitlines()]
        assert all(size > 0 for size in sizes)
