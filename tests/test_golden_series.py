"""Golden-series regression tests for the experiment harness.

The aggregated series of every registered experiment are pinned against
committed JSON.  The tier-1 fixture runs the whole registry over a
restricted (cifarnet, gru) context with light sampling — seconds, no
disk cache — and must stay **byte-stable**: both the simulator and the
JSON float round-trip are deterministic, so any diff is a real
behavioral change.  The slow full-suite golden pins all 21 experiments'
paper-matrix series (pre-refactor values; regenerate with
``python tests/golden/regen.py`` only for an intentional engine change).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.gpu.config import SimOptions
from repro.harness.suite import run_all
from repro.runs import PlanContext

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The tier-1 fixture context: two cheap networks, light sampling.
FIXTURE_CTX = PlanContext(networks=("cifarnet", "gru"), options=SimOptions().light())


def series_of(ctx: PlanContext | None = None) -> dict:
    """exp_id -> aggregated series for every registered experiment."""
    results = run_all(cache_dir=None, verbose=False, ctx=ctx)
    return {result.exp_id: result.series for result in results}


def canonical(series: dict) -> str:
    return json.dumps(series, indent=2, sort_keys=False)


class TestFixtureGolden:
    def test_fixture_series_byte_stable(self):
        golden = (GOLDEN_DIR / "fixture_series.json").read_text()
        assert canonical(series_of(FIXTURE_CTX)) + "\n" == golden

    def test_fixture_covers_all_experiments(self):
        golden = json.loads((GOLDEN_DIR / "fixture_series.json").read_text())
        assert len(golden) == 21


@pytest.mark.slow
class TestFullSuiteGolden:
    def test_full_series_match_pre_refactor_golden(self):
        golden = json.loads((GOLDEN_DIR / "suite_series.json").read_text())
        assert series_of() == golden
