"""Tests for the GPUWattch power model and the Wattsup meter model."""

from __future__ import annotations

import pytest

from repro.gpu import SimOptions, simulate_network
from repro.isa.opcodes import Pipe
from repro.platforms import GP102, TX1
from repro.power import GpuWattchModel, WattsupMeter
from repro.power.energy_table import FIGURE5_ORDER, DEFAULT_ENERGY
from repro.profiling.stats import KernelStats


@pytest.fixture(scope="module")
def model():
    return GpuWattchModel(GP102)


@pytest.fixture(scope="module")
def cifar(request):
    return simulate_network("cifarnet", GP102, SimOptions().light())


def _stats(cycles=1e6, issued=1e6, l1=1e5, l2=1e4, dram=1e6, rf=3e6):
    s = KernelStats()
    s.cycles = cycles
    s.issued = issued
    s.issued_by_pipe[Pipe.SP] = issued * 0.6
    s.issued_by_pipe[Pipe.FPU] = issued * 0.3
    s.issued_by_pipe[Pipe.LDST] = issued * 0.1
    s.l1_accesses = l1
    s.l2_accesses = l2
    s.l2_misses = l2 / 10
    s.dram_bytes = dram
    s.load_transactions = l1
    s.rf_reads = rf
    s.rf_writes = rf / 3
    s.active_sms = 10
    return s


class TestComponentModel:
    def test_all_figure5_components_present(self, model):
        power = model.stats_power(_stats())
        assert set(power.watts) == set(FIGURE5_ORDER)

    def test_fractions_sum_to_one(self, model):
        fractions = model.stats_power(_stats()).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_zero_window_yields_zero_power(self, model):
        power = model.stats_power(KernelStats())
        assert power.total == 0.0

    def test_more_activity_more_power(self, model):
        low = model.stats_power(_stats(issued=1e5, rf=3e5)).total
        high = model.stats_power(_stats(issued=1e7, rf=3e7)).total
        assert high > low

    def test_idle_floor_present(self, model):
        # A nearly idle window still burns static power.
        power = model.stats_power(_stats(issued=1.0, l1=0, l2=0, dram=0, rf=1.0))
        floor = (
            GP102.num_sms * DEFAULT_ENERGY.idle_sm_watts
            + DEFAULT_ENERGY.uncore_static_watts
        )
        assert power.total == pytest.approx(floor, rel=0.05)

    def test_rf_energy_counts_reads_and_writes(self, model):
        base = _stats(rf=0)
        base.rf_reads = 0
        base.rf_writes = 0
        with_rf = _stats(rf=3e6)
        assert (
            model.component_energy_joules(with_rf)["RF"]
            > model.component_energy_joules(base)["RF"]
        )

    def test_peak_power_bounded_by_envelope(self, model, cifar):
        peak = model.peak_power(cifar)
        assert 0 < peak < 2 * GP102.tdp_watts

    def test_peak_kernel_consistent(self, model, cifar):
        peak_kernel = model.peak_kernel(cifar)
        assert model.kernel_power(peak_kernel).total == pytest.approx(
            model.peak_power(cifar)
        )

    def test_category_power_covers_all_categories(self, model, cifar):
        watts = model.category_power(cifar)
        assert set(watts) == set(cifar.cycles_by_category())
        assert all(w > 0 for w in watts.values())

    def test_network_energy_positive(self, model, cifar):
        assert model.network_energy_joules(cifar) > 0


class TestWattsup:
    def test_measurement_fields(self, cifar):
        meter = WattsupMeter(GP102)
        m = meter.measure(cifar)
        assert m.platform == "GP102"
        assert m.time_s > 0 and m.peak_watts > 0
        assert m.energy_j == pytest.approx(m.peak_watts * m.time_s)

    def test_board_floor_respected(self):
        meter = WattsupMeter(TX1)
        result = simulate_network("gru", TX1, SimOptions().light())
        m = meter.measure(result)
        assert m.peak_watts >= TX1.idle_watts
