"""Tests for the canonical kernel identity (:mod:`repro.analysis.canonical`).

The canonical form must be *translation-invariant* — uniformly
relocating a launch's regions and address bases cannot change its
signature — while any perturbation of the geometry, the region extents
or the program structure must land in a different digest.  Both
directions are property-tested over the real compiled launches of the
suite, and the load-bearing invariant (equal signatures produce
bit-identical ``KernelStats``) is pinned against the simulator.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.canonical import (
    CANONICAL_VERSION,
    canonical_launch,
    canonical_signature,
    simulated_block_coords,
    wave_class,
)
from repro.isa.program import Loop, Program
from repro.kernels.compile import compiled_network
from repro.kernels.launch import KernelLaunch, MemRegion


def _shift_items(items, delta: int):
    out = []
    for item in items:
        if isinstance(item, Loop):
            out.append(Loop(item.var, item.trips, _shift_items(item.body, delta)))
        elif item.addr is not None:
            out.append(replace(item, addr=item.addr.shifted(delta)))
        else:
            out.append(item)
    return tuple(out)


def relocate(launch: KernelLaunch, delta: int) -> KernelLaunch:
    """The same launch with every region and address base moved by
    *delta* — the relocation a different allocator would produce."""
    program = Program(
        items=_shift_items(launch.program.items, delta),
        reg_count=launch.program.reg_count,
        entry_regs=launch.program.entry_regs,
    )
    regions = tuple(
        MemRegion(r.name, r.base + delta, r.size_bytes) for r in launch.regions
    )
    return KernelLaunch(
        name=launch.name,
        node_name=launch.node_name,
        category=launch.category,
        grid=launch.grid,
        block=launch.block,
        program=program,
        regs=launch.regs,
        smem_bytes=launch.smem_bytes,
        cmem_bytes=launch.cmem_bytes,
        active_threads=launch.active_threads,
        regions=regions,
        shared_input=launch.shared_input,
    )


def _rebuilt(launch: KernelLaunch, **overrides) -> KernelLaunch:
    """A fresh launch object with selected fields replaced (bypasses the
    per-object signature cache)."""
    fields = dict(
        name=launch.name,
        node_name=launch.node_name,
        category=launch.category,
        grid=launch.grid,
        block=launch.block,
        program=launch.program,
        regs=launch.regs,
        smem_bytes=launch.smem_bytes,
        cmem_bytes=launch.cmem_bytes,
        active_threads=launch.active_threads,
        regions=launch.regions,
        shared_input=launch.shared_input,
    )
    fields.update(overrides)
    return KernelLaunch(**fields)


LAUNCHES = compiled_network("cifarnet") + compiled_network("gru")


class TestTranslationInvariance:
    @settings(max_examples=60, deadline=None)
    @given(
        index=st.integers(0, len(LAUNCHES) - 1),
        delta=st.integers(0, 1 << 32),
    )
    def test_uniform_relocation_preserves_signature(self, index, delta):
        launch = LAUNCHES[index]
        moved = relocate(launch, delta)
        assert canonical_launch(moved) == canonical_launch(launch)
        assert canonical_signature(moved) == canonical_signature(launch)

    def test_relocated_launch_is_genuinely_different(self):
        launch = LAUNCHES[0]
        moved = relocate(launch, 4096)
        assert moved.regions[0].base == launch.regions[0].base + 4096
        assert canonical_signature(moved) == canonical_signature(launch)

    def test_signature_is_cached_per_object(self):
        launch = relocate(LAUNCHES[0], 0)
        first = canonical_signature(launch)
        assert launch._canonical_sig == first
        assert canonical_signature(launch) is first


class TestDistinctness:
    @pytest.fixture(scope="class")
    def launch(self) -> KernelLaunch:
        return LAUNCHES[0]

    def test_version_tag_is_folded_in(self, launch):
        assert canonical_launch(launch)[0] == CANONICAL_VERSION

    @pytest.mark.parametrize(
        "override",
        [
            lambda l: {"grid": (l.grid[0] + 1, l.grid[1], l.grid[2])},
            # Shrink rather than grow: the fixture launch already sits
            # at the per-block thread limit.
            lambda l: {"block": (max(1, l.block[0] - 1), l.block[1], l.block[2])},
            lambda l: {"active_threads": l.active_threads + 1},
            lambda l: {"regs": l.regs + 1},
            lambda l: {"smem_bytes": l.smem_bytes + 4},
            lambda l: {"cmem_bytes": l.cmem_bytes + 4},
            lambda l: {"shared_input": not l.shared_input},
            lambda l: {
                "regions": (
                    MemRegion(
                        l.regions[0].name,
                        l.regions[0].base,
                        l.regions[0].size_bytes + 4,
                    ),
                )
                + l.regions[1:]
            },
        ],
        ids=[
            "grid", "block", "active-threads", "regs", "smem", "cmem",
            "shared-input", "region-size",
        ],
    )
    def test_geometry_perturbation_changes_signature(self, launch, override):
        perturbed = _rebuilt(launch, **override(launch))
        assert canonical_signature(perturbed) != canonical_signature(launch)

    def test_trip_count_perturbation_changes_signature(self, launch):
        def bump_first_loop(items):
            out = list(items)
            for i, item in enumerate(out):
                if isinstance(item, Loop):
                    out[i] = Loop(item.var, item.trips + 1, item.body)
                    return tuple(out), True
            return tuple(out), False

        items, found = bump_first_loop(launch.program.items)
        assert found, "expected at least one loop in a conv program"
        program = Program(
            items=items,
            reg_count=launch.program.reg_count,
            entry_regs=launch.program.entry_regs,
        )
        perturbed = _rebuilt(launch, program=program)
        assert canonical_signature(perturbed) != canonical_signature(launch)

    def test_dropped_instruction_changes_signature(self, launch):
        program = Program(
            items=launch.program.items[1:],
            reg_count=launch.program.reg_count,
            entry_regs=launch.program.entry_regs,
        )
        perturbed = _rebuilt(launch, program=program)
        assert canonical_signature(perturbed) != canonical_signature(launch)

    def test_names_are_excluded(self, launch):
        renamed = _rebuilt(launch, name="Other 9", node_name="other")
        assert canonical_signature(renamed) == canonical_signature(launch)

    def test_distinct_kernels_across_suite_do_not_collide(self):
        by_sig: dict[str, tuple] = {}
        for launch in LAUNCHES:
            sig = canonical_signature(launch)
            form = canonical_launch(launch)
            assert by_sig.setdefault(sig, form) == form


class TestWaveClass:
    @settings(max_examples=40, deadline=None)
    @given(
        gx=st.integers(1, 8), gy=st.integers(1, 8), gz=st.integers(1, 4),
        blocks=st.integers(1, 8),
    )
    def test_coords_reconstruct_linear_block_id(self, gx, gy, gz, blocks):
        coords = simulated_block_coords((gx, gy, gz), min(blocks, gx * gy * gz))
        for bi, (cx, cy, cz) in enumerate(coords):
            assert (cz * gy + cy) * gx + cx == bi

    def test_grid_is_excluded_when_coords_agree(self):
        launch = LAUNCHES[0]
        wider = _rebuilt(launch, grid=(launch.grid[0] + 4, 1, 1))
        # Both grids are x-major, so the first simulated block coords
        # coincide and the wave class must too.
        assert wave_class(launch, 1, False) == wave_class(wider, 1, False)

    def test_warm_flag_splits_the_class(self):
        launch = LAUNCHES[0]
        assert wave_class(launch, 1, True) != wave_class(launch, 1, False)
