"""Tests for the ``repro`` CLI (``repro lint`` / ``repro networks``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestLintCommand:
    def test_clean_network_exits_zero(self, capsys):
        assert main(["lint", "cifarnet"]) == 0
        out = capsys.readouterr().out
        assert "cifarnet" in out
        assert "error[" not in out

    def test_report_has_summary_header(self, capsys):
        main(["lint", "cifarnet"])
        out = capsys.readouterr().out
        # Header line: "cifarnet: N kernels — E errors, W warnings, ..."
        assert "kernels" in out and "0 errors" in out

    def test_json_output_is_parseable(self, capsys):
        assert main(["lint", "--json", "cifarnet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload[0]["network"] == "cifarnet"
        assert payload[0]["counts"]["error"] == 0
        assert payload[0]["kernels"] > 0

    def test_strict_promotes_warnings_to_failure(self, capsys):
        # CifarNet carries paper-faithful warnings (uncoalesced FC rows),
        # so --strict must flip the exit status to 1.
        assert main(["lint", "--strict", "cifarnet"]) == 1

    def test_quiet_hides_notes(self, capsys):
        main(["lint", "cifarnet"])
        noisy = capsys.readouterr().out
        main(["lint", "--quiet", "cifarnet"])
        quiet = capsys.readouterr().out
        assert "note[" in noisy
        assert "note[" not in quiet

    def test_unknown_network_exits_two(self, capsys):
        assert main(["lint", "nosuchnet"]) == 2
        err = capsys.readouterr().err
        assert "nosuchnet" in err and "available" in err

    def test_multiple_networks_in_one_run(self, capsys):
        assert main(["lint", "cifarnet", "gru"]) == 0
        out = capsys.readouterr().out
        assert "cifarnet" in out and "gru" in out


class TestNetworksCommand:
    def test_lists_all_seven_paper_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in ("cifarnet", "alexnet", "squeezenet", "resnet",
                     "vggnet", "gru", "lstm"):
            assert name in out


def test_missing_subcommand_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2
