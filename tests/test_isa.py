"""Unit tests for the ISA: opcodes, programs, expansion, liveness."""

from __future__ import annotations

import pytest

from repro.isa import DType, Instruction, Loop, Op, Pipe, Program, op_pipe
from repro.isa.opcodes import op_latency
from repro.isa.program import (
    expand_program,
    max_live_registers,
    sample_trips,
)
from repro.isa.registers import RegisterAllocator


class TestOpcodes:
    def test_every_opcode_has_a_pipe(self):
        for op in Op:
            assert op_pipe(op) in Pipe

    def test_figure8_legend_coverage(self):
        # The paper's Figure 8 legend lists these opcodes exactly.
        legend = {
            "abs", "add", "and", "bar", "bra", "callp", "cvt", "ex2", "exit",
            "ld", "mad", "mad24", "max", "min", "mov", "mul", "nop", "or",
            "rcp", "retp", "rsqrt", "set", "shl", "shr", "ssy", "st", "xor",
        }
        assert {op.value for op in Op} == legend

    def test_sfu_ops_slower_than_alu(self):
        assert op_latency(Op.RSQRT) > op_latency(Op.ADD)

    def test_memory_latency_deferred_to_hierarchy(self):
        assert op_latency(Op.LD) == 0


class TestRegisterAllocator:
    def test_fresh_registers_are_distinct(self):
        ra = RegisterAllocator()
        regs = [ra.fresh() for _ in range(10)]
        assert len({r.index for r in regs}) == 10
        assert ra.count == 10

    def test_specials_are_memoized(self):
        ra = RegisterAllocator()
        a = ra.special("%tid.x")
        b = ra.special("%tid.x")
        assert a is b
        assert len(ra.specials) == 1


def _simple_program(trips: int) -> Program:
    ra = RegisterAllocator()
    acc = ra.fresh()
    tmp = ra.fresh()
    body = (
        Instruction(Op.LD, DType.F32, dst=tmp),
        Instruction(Op.MAD, DType.F32, dst=acc, srcs=(tmp, acc)),
    )
    return Program(
        items=(
            Instruction(Op.MOV, DType.F32, dst=acc),
            Loop("rc", trips, body),
            Instruction(Op.ST, DType.F32, srcs=(acc,)),
            Instruction(Op.EXIT),
        ),
        reg_count=ra.count,
    )


class TestProgramCounts:
    def test_static_count_counts_loop_body_once(self):
        assert _simple_program(100).static_count() == 5

    def test_dynamic_count_multiplies_trips(self):
        assert _simple_program(100).dynamic_count() == 3 + 2 * 100

    def test_negative_trips_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Loop("x", -1, ())


class TestSampling:
    def test_small_loop_fully_expanded(self):
        picks = sample_trips(10, 16)
        assert picks == [(i, 1.0) for i in range(10)]

    def test_unbudgeted_loop_fully_expanded(self):
        assert len(sample_trips(50, None)) == 50

    def test_sampled_weights_are_unbiased(self):
        picks = sample_trips(1000, 64)
        assert len(picks) == 64
        assert sum(w for _, w in picks) == pytest.approx(1000)

    def test_sampled_indices_valid_and_unique(self):
        picks = sample_trips(997, 64)
        indices = [i for i, _ in picks]
        assert len(set(indices)) == len(indices)
        assert min(indices) >= 0 and max(indices) < 997

    def test_sampled_chunks_are_contiguous_runs(self):
        # Chunked sampling must preserve >=line-length contiguous runs so
        # streaming-loop cache behaviour survives (see module docstring).
        picks = [i for i, _ in sample_trips(10_000, 64)]
        runs = 1
        for a, b in zip(picks, picks[1:]):
            if b != a + 1:
                runs += 1
        assert runs <= 2
        assert any(True for _ in picks)

    def test_sampled_chunks_cover_the_range(self):
        picks = [i for i, _ in sample_trips(10_000, 64)]
        assert min(picks) < 1000 and max(picks) > 9000

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            sample_trips(100, 0)


class TestExpansion:
    def test_expansion_weight_matches_dynamic_count(self):
        program = _simple_program(5000)
        expanded = expand_program(program, max_trips=64)
        assert sum(e.weight for e in expanded) == pytest.approx(program.dynamic_count())

    def test_loop_env_carries_iteration_index(self):
        program = _simple_program(4)
        expanded = expand_program(program)
        loads = [e for e in expanded if e.op is Op.LD]
        assert [e.loop_env["rc"] for e in loads] == [0, 1, 2, 3]

    def test_nested_outer_budget(self):
        ra = RegisterAllocator()
        inner = Loop("i", 100, (Instruction(Op.ADD, DType.U32, dst=ra.fresh()),))
        outer = Loop("o", 50, (inner,))
        program = Program(items=(outer,))
        expanded = expand_program(program, max_trips=10, max_outer_trips=2)
        outer_values = {e.loop_env["o"] for e in expanded}
        assert len(outer_values) == 2
        assert sum(e.weight for e in expanded) == pytest.approx(50 * 100)

    def test_zero_trip_loop_expands_to_nothing(self):
        # A trips=0 loop contributes no expanded records (and no
        # weight), even with a non-empty body; the static linter
        # (repro.analysis, code `zero-trip-loop`) flags the dead body.
        program = _simple_program(0)
        expanded = expand_program(program)
        assert [e.op for e in expanded] == [Op.MOV, Op.ST, Op.EXIT]
        assert sum(e.weight for e in expanded) == 3
        assert program.dynamic_count() == 3

    def test_zero_trip_nested_inside_live_loop(self):
        ra = RegisterAllocator()
        dead = Loop("i", 0, (Instruction(Op.ADD, DType.U32, dst=ra.fresh()),))
        live_body = (Instruction(Op.MOV, DType.U32, dst=ra.fresh()), dead)
        program = Program(items=(Loop("o", 3, live_body),), reg_count=ra.count)
        expanded = expand_program(program)
        assert [e.op for e in expanded] == [Op.MOV] * 3
        assert all("i" not in e.loop_env for e in expanded)


class TestDescribe:
    def test_alu_instruction_renders_ptx_like(self):
        from repro.isa.registers import Reg

        instr = Instruction(Op.MAD, DType.F32, dst=Reg(5), srcs=(Reg(1), Reg(2)))
        assert instr.describe() == "mad.f32 r5, r1, r2"
        assert repr(instr) == "<Instruction mad.f32 r5, r1, r2>"
        assert str(instr) == instr.describe()

    def test_special_register_renders_by_name(self):
        ra = RegisterAllocator()
        tid = ra.special("%tid.x")
        instr = Instruction(Op.MOV, DType.U32, dst=ra.fresh(), srcs=(tid,))
        assert "%tid.x" in instr.describe()

    def test_memory_instruction_without_expr_is_implicit(self):
        from repro.isa.instruction import MemSpace
        from repro.isa.registers import Reg

        instr = Instruction(Op.LD, DType.F32, dst=Reg(3), space=MemSpace.SHARED)
        assert instr.describe() == "ld.shared.f32 r3, [implicit]"

    def test_vector_width_gets_suffix(self):
        from repro.isa.instruction import MemSpace
        from repro.isa.registers import Reg

        instr = Instruction(
            Op.LD, DType.F32, dst=Reg(0), space=MemSpace.GLOBAL, width_bytes=8
        )
        assert instr.describe().startswith("ld.global.v2.f32 ")

    def test_bare_control_flow_renders(self):
        assert Instruction(Op.EXIT).describe() == "exit"
        assert Instruction(Op.BAR, DType.NONE).describe() == "bar"


class TestLiveness:
    def test_max_live_of_simple_program(self):
        program = _simple_program(10)
        result = max_live_registers(program)
        # acc and tmp overlap inside the loop.
        assert result.max_live == 2

    def test_entry_regs_counted_live(self):
        ra = RegisterAllocator()
        a = ra.special("%tid.x")
        b = ra.fresh()
        program = Program(
            items=(
                Instruction(Op.ADD, DType.U32, dst=b, srcs=(a,)),
                Instruction(Op.ST, DType.U32, srcs=(b,)),
            ),
            entry_regs=(a,),
        )
        assert max_live_registers(program).max_live >= 2
