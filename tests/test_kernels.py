"""Tests for the kernel IR: addressing, mapping (Table III), builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.suite import get_network, list_networks
from repro.isa.opcodes import Op
from repro.isa.program import expand_program
from repro.kernels.addressing import AddrExpr, Term, affine
from repro.kernels.compile import compiled_network
from repro.kernels.launch import MAX_THREADS_PER_BLOCK
from repro.kernels.mapping import plan_network
from repro.kernels.memory_layout import MemLayout


class _FakeWarp:
    width = 4

    def __init__(self):
        self.lane_syms = {
            "tx": np.array([0, 1, 2, 3], dtype=np.int64),
            "ty": np.array([5, 5, 5, 5], dtype=np.int64),
            "tz": np.zeros(4, dtype=np.int64),
            "lin_tid": np.array([160, 161, 162, 163], dtype=np.int64),
        }
        self.block_syms = {"bx": 2, "by": 0, "bz": 1, "lin_bid": 7, "one": 1}


class TestAddressing:
    def test_affine_thread_terms(self):
        expr = affine(100, tx=4)
        out = expr.evaluate(_FakeWarp(), {})
        np.testing.assert_array_equal(out, [100, 104, 108, 112])

    def test_block_and_const_terms(self):
        expr = AddrExpr(0, (Term("bx", 10), Term("one", 5)))
        out = expr.evaluate(_FakeWarp(), {})
        assert (out == 25).all()

    def test_loop_env_terms(self):
        expr = AddrExpr(0, (Term("rc", 8),))
        out = expr.evaluate(_FakeWarp(), {"rc": 3})
        assert (out == 24).all()

    def test_divmod_decomposition(self):
        # rc over a collapsed (c, kh, kw) = (x//9, (x//3)%3, x%3) space.
        expr = AddrExpr(
            0, (Term("rc", 100, div=9), Term("rc", 10, div=3, mod=3), Term("rc", 1, mod=3))
        )
        out = expr.evaluate(_FakeWarp(), {"rc": 17})  # c=1, kh=2, kw=2
        assert (out == 122).all()

    def test_pre_scaling_for_unrolled_loops(self):
        expr = AddrExpr(0, (Term("rc", 1, pre=2, mod=6),))
        out = expr.evaluate(_FakeWarp(), {"rc": 4})  # (4*2) % 6 = 2
        assert (out == 2).all()

    def test_shifted(self):
        expr = affine(100, tx=4).shifted(28)
        assert expr.base == 128


class TestAddrDescribe:
    def test_plain_affine_expression(self):
        expr = AddrExpr(256, (Term("lin_tid", 4),))
        assert expr.describe() == "256 + 4*lin_tid"

    def test_large_bases_render_hex(self):
        expr = AddrExpr(1 << 30, (Term("tx", 4),))
        assert expr.describe() == "0x40000000 + 4*tx"

    def test_divmod_pipeline_rendering(self):
        term = Term("rc", 4, div=9, mod=3, pre=2)
        assert term.describe() == "4*(rc*2//9%3)"
        assert Term("rc", 1, mod=3).describe() == "(rc%3)"
        assert Term("bx", 10).describe() == "10*bx"
        assert str(term) == term.describe()

    def test_bare_base(self):
        assert AddrExpr(64).describe() == "64"


class TestAddressingEdgeCases:
    """Brute-force checks of Term's pre//div%mod pipeline corners."""

    def test_pre_scale_composes_before_div_and_mod(self):
        # Unrolled-by-3 counter walking a (kh, kw) = (v*3//5, v*3%5)
        # space; the reference applies the operations in Term's
        # documented order for every value.
        term = Term("rc", 7, div=5, mod=4, pre=3)
        for v in range(0, 50):
            expected = ((v * 3) // 5 % 4) * 7
            assert term.apply(v) == expected, v

    def test_negative_pre_matches_python_floor_semantics(self):
        # Mirrored walk (pre < 0) must follow Python's floor-division
        # and non-negative-mod rules, matching the numpy evaluation.
        term = Term("rc", 4, div=3, mod=5, pre=-2)
        for v in range(0, 20):
            expected = ((v * -2) // 3 % 5) * 4
            assert term.apply(v) == expected, v
            vec = term.apply(np.array([v], dtype=np.int64))
            assert int(vec[0]) == expected, v

    def test_mod_smaller_than_div_quotient_range(self):
        # div=4 over lin_tid in [0, 1023] yields quotients up to 255,
        # but mod=3 folds them to {0,1,2}: the term must wrap rather
        # than track the quotient.
        term = Term("lin_tid", 1, div=4, mod=3)
        values = np.arange(1024, dtype=np.int64)
        out = term.apply(values)
        np.testing.assert_array_equal(out, (values // 4) % 3)
        assert set(np.unique(out)) == {0, 1, 2}

    def test_one_symbol_scales_as_constant_offset(self):
        # `one` is the canonical way mappings express constant tile
        # origins; coef and the pre//div%mod pipeline still apply.
        expr = AddrExpr(1000, (Term("one", 36), Term("one", 5, pre=7, div=2, mod=3)))
        out = expr.evaluate(_FakeWarp(), {})
        # 1000 + 36*1 + 5*((1*7)//2 % 3) = 1000 + 36 + 5*0
        assert (out == 1036).all()

    def test_lane_vector_matches_per_lane_scalar_reference(self):
        # Full AddrExpr evaluation over the fake warp must equal the
        # brute-force per-lane scalar computation.
        expr = AddrExpr(
            64,
            (
                Term("lin_tid", 4, div=8, mod=16, pre=2),
                Term("tx", -12, mod=3),
                Term("bx", 100),
                Term("rc", 1, pre=5, div=2),
            ),
        )
        warp = _FakeWarp()
        out = expr.evaluate(warp, {"rc": 9})
        for lane in range(warp.width):
            lin = int(warp.lane_syms["lin_tid"][lane])
            tx = int(warp.lane_syms["tx"][lane])
            expected = (
                64
                + ((lin * 2) // 8 % 16) * 4
                + (tx % 3) * -12
                + warp.block_syms["bx"] * 100
                + ((9 * 5) // 2) * 1
            )
            assert int(out[lane]) == expected, lane


class TestMemLayout:
    def test_slots_never_collide(self):
        layout = MemLayout()
        a = layout.alloc("input", "in", 600 << 20)
        b = layout.alloc("weight", "w", 600 << 20)
        c = layout.alloc("output", "out", 4)
        assert a + (600 << 20) <= b
        assert b + (600 << 20) <= c

    def test_alignment(self):
        layout = MemLayout()
        layout.alloc("input", "a", 3)
        second = layout.alloc("input", "b", 8)
        assert second % 256 == 0

    def test_unknown_slot_rejected(self):
        with pytest.raises(ValueError, match="slot"):
            MemLayout().alloc("bogus", "x", 4)


class TestTable3Geometry:
    """The paper's Table III launch geometries, checked exactly."""

    def _kernels(self, name):
        return {k.name: k for k in compiled_network(name)}

    def test_gru_lstm_blocks(self):
        assert self._kernels("gru")["GRU Layer (t=0)"].block == (10, 10, 1)
        assert self._kernels("lstm")["LSTM Layer (t=0)"].block == (100, 1, 1)

    def test_cifarnet_single_block_kernels(self):
        ks = self._kernels("cifarnet")
        for name in ("conv1", "pool1", "conv2", "pool2", "conv3", "pool3"):
            assert ks[name].grid == (1, 1, 1)
            assert ks[name].block == (32, 32, 1)
        assert ks["fc1"].block == (64, 1, 1)
        assert ks["fc2"].block == (32, 1, 1)

    def test_alexnet_conv1_four_tile_kernels(self):
        ks = self._kernels("alexnet")
        tiles = [ks[f"conv1-{i}"].block for i in range(1, 5)]
        assert tiles == [(32, 32, 1), (32, 23, 1), (23, 32, 1), (23, 23, 1)]
        assert all(ks[f"conv1-{i}"].grid == (96, 1, 1) for i in range(1, 5))

    def test_alexnet_channel_splits(self):
        ks = self._kernels("alexnet")
        assert ks["conv2-1"].grid == (128, 1, 1)
        assert ks["conv3"].grid == (384, 1, 1)
        assert ks["conv4-1"].grid == (192, 1, 1)
        assert ks["conv5-2"].grid == (128, 1, 1)
        assert ks["fc6"].grid == (4096, 1, 1) and ks["fc6"].block == (1, 1, 1)

    def test_squeezenet_row_kernels(self):
        ks = self._kernels("squeezenet")
        assert ks["conv1"].grid == (111, 1, 1) and ks["conv1"].block == (111, 1, 1)
        assert ks["fire2/squeeze1x1"].block == (55, 1, 1)
        assert ks["fire9/expand3x3"].block == (13, 1, 1)
        assert ks["conv10"].grid == (15, 1, 1)
        assert ks["pool10"].block == (1000, 1, 1)

    def test_resnet_block_per_channel(self):
        ks = self._kernels("resnet")
        assert ks["conv1"].grid == (64, 1, 1) and ks["conv1"].block == (32, 32, 1)
        assert ks["res2a_branch1"].grid == (256, 1, 1)
        assert ks["bn_conv1"].block == (32, 32, 1)

    def test_vggnet_3d_grids(self):
        ks = self._kernels("vggnet")
        assert ks["conv1_1"].grid == (16, 16, 64) and ks["conv1_1"].block == (14, 14, 1)
        assert ks["conv3_1"].grid == (8, 8, 256) and ks["conv3_1"].block == (7, 7, 1)
        assert ks["fc6"].grid == (4, 4, 4) and ks["fc6"].block == (8, 8, 1)
        assert ks["fc8"].grid == (1, 1, 10) and ks["fc8"].block == (10, 10, 1)

    def test_no_concat_kernels_for_squeezenet(self):
        names = {k.node_name for k in compiled_network("squeezenet")}
        assert not any("concat" in n for n in names)

    @pytest.mark.parametrize("name", list_networks())
    def test_thread_limit_respected(self, name):
        for k in compiled_network(name):
            assert k.threads_per_block <= MAX_THREADS_PER_BLOCK

    @pytest.mark.parametrize("name", list_networks())
    def test_register_counts_plausible(self, name):
        for k in compiled_network(name):
            assert 5 <= k.regs <= 48, k.name

    @pytest.mark.parametrize("name", list_networks())
    def test_smem_cmem_reported(self, name):
        for k in compiled_network(name):
            assert k.smem_bytes > 0
            assert k.cmem_bytes >= 0

    def test_rnn_smem_matches_table3(self):
        assert self._kernels("gru")["GRU Layer (t=0)"].smem_bytes == 504
        assert self._kernels("lstm")["LSTM Layer (t=0)"].smem_bytes == 936


class TestPrograms:
    def test_conv_program_reduction_size(self):
        ks = {k.name: k for k in compiled_network("alexnet")}
        conv1 = ks["conv1-1"]
        # 3 * 11 * 11 = 363 reduction elements per output neuron; the
        # builder unrolls by two so loop trips are halved (rounded up).
        expanded = expand_program(conv1.program)
        mads = sum(e.weight for e in expanded if e.op is Op.MAD)
        assert mads >= 363  # at least one mad per reduction element

    def test_rnn_program_has_barrier_and_shared(self):
        ks = {k.name: k for k in compiled_network("lstm")}
        expanded = expand_program(ks["LSTM Layer (t=0)"].program, 8)
        assert any(e.op is Op.BAR for e in expanded)
        from repro.isa.instruction import MemSpace

        assert any(e.is_mem and e.space is MemSpace.SHARED for e in expanded)

    def test_lstm_has_more_gate_loops_than_gru(self):
        gru = {k.name: k for k in compiled_network("gru")}["GRU Layer (t=0)"]
        lstm = {k.name: k for k in compiled_network("lstm")}["LSTM Layer (t=0)"]
        assert lstm.program.dynamic_count() > gru.program.dynamic_count()

    def test_dynamic_instructions_scale_with_threads(self):
        for k in compiled_network("cifarnet"):
            assert k.dynamic_instructions() == (
                k.program.dynamic_count() * k.total_threads
            )

    def test_every_program_ends_with_exit(self):
        for k in compiled_network("cifarnet"):
            assert k.program.items[-1].op is Op.EXIT

    def test_fc_weight_rows_are_thread_private(self):
        """Each FC thread must stream its own weight row (no sharing)."""
        ks = {k.name: k for k in compiled_network("cifarnet")}
        expanded = expand_program(ks["fc1"].program, 4)
        weight_loads = [
            e for e in expanded
            if e.is_load and e.addr is not None
            and any(t.sym == "lin_tid" for t in e.addr.terms)
        ]
        assert weight_loads, "FC must index weights by thread id"

    def test_signature_stable_across_identical_kernels(self):
        kernels = compiled_network("resnet")
        by_sig: dict[str, str] = {}
        for k in kernels:
            by_sig.setdefault(k.signature(), k.name)
        # ResNet repeats bottleneck shapes: far fewer signatures than kernels.
        assert len(by_sig) < len(kernels) / 2


class TestPlanErrors:
    def test_unknown_network_style_rejected(self):
        from repro.core.graph import NetworkGraph

        with pytest.raises(KeyError, match="mapping style"):
            plan_network(NetworkGraph("mystery", (1, 2, 2)))
