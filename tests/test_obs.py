"""Tests for the tracing/metrics subsystem (:mod:`repro.obs`).

Covers the tracer and metrics primitives, the Chrome-trace export and
its schema check, the zero-retention guarantee of the disabled path,
and the span shapes the instrumented layers emit (GPU kernels/warps,
executor runs, serve batches with requests nested inside).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.obs import (
    CYCLES,
    NULL_TRACER,
    SIM_MS,
    WALL_S,
    MetricsRegistry,
    Tracer,
    capture_trace,
    get_tracer,
    set_tracer,
    to_chrome_trace,
    validate_chrome_trace,
    write_trace,
)
from repro.serve import PoissonWorkload, ServeConfig, ServeDevice, run_serve
from repro.serve.profiles import KernelTerm, LatencyProfile


class TestTracer:
    def test_span_and_instant_recorded(self):
        tracer = Tracer()
        tracer.span("k", "kernel", CYCLES, 0.0, 10.0,
                    process="gpu", thread="t", args={"a": 1})
        tracer.instant("hit", "cache", WALL_S, 0.5, process="runs", thread="t")
        assert len(tracer.spans) == 1 and len(tracer.instants) == 1
        span = tracer.spans[0]
        assert span.name == "k" and span.dur == 10.0 and span.args == {"a": 1}

    def test_max_events_counts_overflow(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.span("s", "c", CYCLES, float(i), 1.0,
                        process="p", thread="t")
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_wall_clock_is_monotonic(self):
        tracer = Tracer()
        first = tracer.wall()
        second = tracer.wall()
        assert 0.0 <= first <= second

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            assert set_tracer(previous) is tracer
        assert get_tracer() is previous

    def test_capture_trace_installs_and_restores(self):
        before = get_tracer()
        with capture_trace() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before


class TestNullTracer:
    def test_default_tracer_is_disabled(self):
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        assert not tracer.enabled and not tracer.warps

    def test_noop_calls_allocate_nothing(self):
        # __slots__ = () means the null tracer *cannot* retain state.
        assert NULL_TRACER.__slots__ == ()
        NULL_TRACER.span("s", "c", CYCLES, 0.0, 1.0, process="p", thread="t")
        NULL_TRACER.instant("i", "c", CYCLES, 0.0, process="p", thread="t")
        NULL_TRACER.metrics.counter("x").inc()
        NULL_TRACER.metrics.histogram("y").observe(1.0)
        assert not hasattr(NULL_TRACER, "spans")
        assert all(not v for v in NULL_TRACER.metrics.to_dict().values())

    def test_disabled_simulation_retains_no_events(self, light_options):
        from repro.gpu.simulator import simulate_network
        from repro.platforms import make_config

        assert get_tracer() is NULL_TRACER
        simulate_network("gru", make_config("gp102"), light_options)
        assert not hasattr(NULL_TRACER, "spans")
        assert all(not v for v in NULL_TRACER.metrics.to_dict().values())


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g", domain=SIM_MS).set(3.0, ts=1.0)
        registry.gauge("g").set(5.0, ts=2.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("h").observe(value)
        data = registry.to_dict()
        assert data["counters"]["c"]["value"] == 3.5
        assert data["gauges"]["g"]["last"] == 5.0
        assert data["gauges"]["g"]["max"] == 5.0
        assert data["histograms"]["h"]["count"] == 4
        assert data["histograms"]["h"]["mean"] == 2.5

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.histogram("name")

    def test_histogram_percentiles_nearest_rank(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(99) == 99.0


class TestChromeExport:
    def test_export_validates_and_separates_clock_domains(self):
        tracer = Tracer()
        tracer.span("a", "kernel", CYCLES, 0.0, 5.0, process="gpu", thread="t")
        tracer.span("b", "run", WALL_S, 0.0, 0.1, process="runs", thread="t")
        tracer.instant("c", "serve", SIM_MS, 1.0, process="serve", thread="t")
        payload = to_chrome_trace(tracer, meta={"origin": "test"})
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        # Each (domain, process) pair gets its own pid so cycle and
        # wall timestamps never share a track.
        pids = {e["pid"] for e in events if e["ph"] in ("X", "i")}
        assert len(pids) == 3
        assert payload["otherData"]["origin"] == "test"

    def test_write_trace_round_trips(self, tmp_path):
        import json

        tracer = Tracer()
        tracer.span("a", "kernel", CYCLES, 0.0, 5.0, process="gpu", thread="t")
        path = tmp_path / "trace.json"
        payload = write_trace(tracer, path)
        assert json.loads(path.read_text()) == payload
        assert validate_chrome_trace(payload) == []

    def test_validator_flags_malformed_events(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "X", "name": "", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
            {"ph": "X", "name": "ok", "pid": 1, "tid": 1, "ts": -1, "dur": 1},
        ]})
        assert len(problems) == 3

    def test_gauge_timelines_become_counter_events(self):
        tracer = Tracer()
        tracer.metrics.gauge("depth", domain=SIM_MS).set(2.0, ts=1.0)
        tracer.metrics.gauge("depth", domain=SIM_MS).set(4.0, ts=3.0)
        payload = to_chrome_trace(tracer)
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert [e["args"]["value"] for e in counters] == [2.0, 4.0]
        assert validate_chrome_trace(payload) == []


class TestGpuSpans:
    def test_kernel_spans_tile_the_network_timeline(self, light_options):
        from repro.gpu.simulator import simulate_network
        from repro.platforms import make_config

        with capture_trace(warps=False) as tracer:
            result = simulate_network("gru", make_config("gp102"), light_options)
        kernels = [s for s in tracer.spans if s.cat == "kernel"]
        assert len(kernels) == len(result.kernels)
        # Back-to-back: each span starts where the previous one ended.
        offset = 0.0
        for span, kr in zip(kernels, result.kernels):
            assert span.ts == pytest.approx(offset)
            assert span.dur == pytest.approx(kr.stats.cycles)
            offset += kr.stats.cycles
        assert not any(s.cat == "stall" for s in tracer.spans)

    def test_warp_phases_nest_inside_warp_life(self, light_options):
        from repro.gpu.simulator import simulate_network
        from repro.platforms import make_config

        with capture_trace(warps=True) as tracer:
            simulate_network("gru", make_config("gp102"), light_options)
        lives = {s.thread: s for s in tracer.spans if s.cat == "warp"}
        stalls = [s for s in tracer.spans if s.cat == "stall"]
        assert lives and stalls
        for stall in stalls:
            life = lives[stall.thread]
            assert life.ts <= stall.ts
            assert stall.ts + stall.dur <= life.ts + life.dur + 1e-9


class TestServeSpans:
    def _run_traced_serve(self):
        profile = LatencyProfile(
            "net", "Fast", 1.0, 5.0e6, (KernelTerm(0.5e6, 1, 1, 1),)
        )
        device = ServeDevice("fast#0", replace_platform_name("Fast"))
        workload = PoissonWorkload(rps=150.0, requests=60, networks=["net"])
        with capture_trace(warps=False) as tracer:
            stats = run_serve(
                [device], {("net", "Fast"): profile}, workload,
                ServeConfig(seed=3, max_batch=4),
            )
        return tracer, stats

    def test_request_spans_nest_under_batch_spans(self):
        tracer, stats = self._run_traced_serve()
        batches = {
            s.args["batch_id"]: s for s in tracer.spans if s.cat == "batch"
        }
        requests = [s for s in tracer.spans if s.cat == "request"]
        assert batches and requests
        assert len(requests) == stats.completed
        for request in requests:
            batch = batches[request.args["batch_id"]]
            # Same device track, interval contained in the batch's.
            assert request.thread == batch.thread
            assert batch.ts <= request.ts
            assert request.ts + request.dur <= batch.ts + batch.dur + 1e-9

    def test_queue_spans_end_at_batch_launch(self):
        tracer, _ = self._run_traced_serve()
        batches = {
            s.args["batch_id"]: s for s in tracer.spans if s.cat == "batch"
        }
        queues = [s for s in tracer.spans if s.cat == "queue"]
        assert queues
        for queue in queues:
            batch = batches[queue.args["batch_id"]]
            assert queue.ts + queue.dur == pytest.approx(batch.ts)

    def test_serve_metrics_recorded(self):
        tracer, stats = self._run_traced_serve()
        metrics = tracer.metrics.to_dict()
        assert metrics["counters"]["serve.completed"]["value"] == stats.completed
        assert metrics["histograms"]["serve.latency_ms"]["count"] == stats.completed
        assert "serve.queue_depth.fast#0" in metrics["gauges"]


def replace_platform_name(name: str):
    """A tiny GpuConfig stand-in platform for serve tests."""
    from repro.gpu.config import GpuConfig

    return GpuConfig(
        name=name,
        num_sms=4,
        cores_per_sm=128,
        clock_ghz=1.0,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        shared_mem_per_sm=96 * 1024,
        l1_size=32 * 1024,
        l2_size=512 * 1024,
        dram_gb_per_s=100.0,
    )
