"""Tests for the static kernel-IR verifier (:mod:`repro.analysis`).

Each analysis pass gets at least one test that plants a synthetic
defect — an out-of-bounds affine address, a read of a register nothing
wrote, a missing barrier between shared-memory phases, a shared-memory
footprint overflow — and asserts it is detected with the right severity,
code and kernel attribution.  A second set of tests pins the clean-path
behaviour: the benign patterns the suite's builders emit on purpose
(padding overhang, broadcast loads, barrier-separated phases) must NOT
be errors.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Diagnostic,
    Interval,
    KernelVerificationError,
    LintReport,
    Severity,
    analyze_launch,
    analyze_launches,
    check_addresses,
    check_defuse,
    check_lints,
    check_shared,
    verify_launches,
)
from repro.analysis.intervals import addr_interval, launch_symbol_ranges, term_interval
from repro.isa.dtypes import DType
from repro.isa.instruction import Instruction, MemSpace
from repro.isa.opcodes import Op
from repro.isa.program import Loop, Program
from repro.isa.registers import Reg, RegisterAllocator
from repro.kernels.addressing import AddrExpr, Term
from repro.kernels.launch import KernelLaunch, MemRegion


def make_launch(
    program: Program,
    *,
    name: str = "Synthetic 1",
    grid: tuple[int, int, int] = (1, 1, 1),
    block: tuple[int, int, int] = (32, 1, 1),
    regs: int | None = None,
    smem_bytes: int = 0,
    regions: tuple[MemRegion, ...] = (),
    active: int | None = None,
) -> KernelLaunch:
    """A minimal launch wrapping *program* for single-pass tests."""
    threads = block[0] * block[1] * block[2]
    return KernelLaunch(
        name=name,
        node_name="synthetic",
        category="Conv",
        grid=grid,
        block=block,
        program=program,
        regs=program.reg_count if regs is None else regs,
        smem_bytes=smem_bytes,
        cmem_bytes=0,
        active_threads=threads if active is None else active,
        regions=regions,
    )


def codes(diags: list[Diagnostic], severity: Severity | None = None) -> set[str]:
    """Diagnostic codes, optionally filtered to one severity."""
    return {
        d.code for d in diags if severity is None or d.severity is severity
    }


class TestIntervals:
    def test_add_and_scale(self):
        assert Interval(1, 3) + Interval(10, 20) == Interval(11, 23)
        assert Interval(1, 3).scale(-2) == Interval(-6, -2)

    def test_floordiv_monotonic(self):
        assert Interval(5, 17).floordiv(4) == Interval(1, 4)

    def test_mod_exact_window(self):
        assert Interval(10, 12).mod(8) == Interval(2, 4)

    def test_mod_wraps_to_full_residue_range(self):
        assert Interval(6, 10).mod(8) == Interval(0, 7)
        assert Interval(0, 100).mod(8) == Interval(0, 7)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_term_interval_matches_apply_pointwise(self):
        term = Term("rc", 7, div=3, mod=5, pre=2)
        rng = Interval(0, 40)
        values = [term.apply(v) for v in range(rng.lo, rng.hi + 1)]
        bound = term_interval(term, rng)
        assert bound.lo <= min(values) and max(values) <= bound.hi

    def test_launch_ranges_clip_lin_tid_to_active(self):
        launch = make_launch(Program(items=()), block=(32, 2, 1), active=40)
        ranges = launch_symbol_ranges(launch)
        assert ranges["lin_tid"] == Interval(0, 39)
        assert ranges["ty"] == Interval(0, 1)

    def test_addr_interval_reports_unbound(self):
        expr = AddrExpr(0, (Term("mystery", 4),))
        _, unbound = addr_interval(expr, {})
        assert unbound == ["mystery"]


class TestDefusePass:
    def test_unwritten_register_read_is_error(self):
        ra = RegisterAllocator()
        ghost = ra.fresh()
        dst = ra.fresh()
        program = Program(
            items=(Instruction(Op.ADD, DType.U32, dst=dst, srcs=(ghost,)),),
            reg_count=ra.count,
        )
        launch = make_launch(program, name="Ghost 1")
        diags = check_defuse(launch)
        errors = [d for d in diags if d.code == "unwritten-read"]
        assert len(errors) == 1
        assert errors[0].severity is Severity.ERROR
        assert errors[0].kernel == "Ghost 1"

    def test_loop_carried_definition_is_not_flagged(self):
        # acc is written before the loop and updated inside it; the
        # in-loop read of acc must not count as unwritten.
        ra = RegisterAllocator()
        acc = ra.fresh()
        v = ra.fresh()
        program = Program(
            items=(
                Instruction(Op.MOV, DType.F32, dst=acc),
                Loop(
                    "rc",
                    8,
                    (
                        Instruction(Op.LD, DType.F32, dst=v),
                        Instruction(Op.MAD, DType.F32, dst=acc, srcs=(v, acc)),
                    ),
                ),
            ),
            reg_count=ra.count,
        )
        assert "unwritten-read" not in codes(check_defuse(make_launch(program)))

    def test_iteration_zero_read_before_write_is_flagged(self):
        # The register is only defined later in the same loop body, so
        # iteration 0 genuinely reads garbage.
        ra = RegisterAllocator()
        late = ra.fresh()
        out = ra.fresh()
        program = Program(
            items=(
                Loop(
                    "rc",
                    8,
                    (
                        Instruction(Op.ADD, DType.U32, dst=out, srcs=(late,)),
                        Instruction(Op.MOV, DType.U32, dst=late),
                    ),
                ),
            ),
            reg_count=ra.count,
        )
        assert "unwritten-read" in codes(check_defuse(make_launch(program)), Severity.ERROR)

    def test_entry_registers_are_predefined(self):
        ra = RegisterAllocator()
        tid = ra.special("%tid.x")
        dst = ra.fresh()
        program = Program(
            items=(Instruction(Op.MOV, DType.U32, dst=dst, srcs=(tid,)),),
            reg_count=ra.count,
            entry_regs=ra.specials,
        )
        assert "unwritten-read" not in codes(check_defuse(make_launch(program)))

    def test_dead_write_is_note(self):
        ra = RegisterAllocator()
        unused = ra.fresh()
        program = Program(
            items=(Instruction(Op.SHL, DType.U32, dst=unused),),
            reg_count=ra.count,
        )
        diags = check_defuse(make_launch(program))
        dead = [d for d in diags if d.code == "dead-write"]
        assert len(dead) == 1 and dead[0].severity is Severity.NOTE

    def test_max_live_above_declared_regs_is_error(self):
        ra = RegisterAllocator()
        a, b, c = ra.fresh(), ra.fresh(), ra.fresh()
        program = Program(
            items=(
                Instruction(Op.MOV, DType.U32, dst=a),
                Instruction(Op.MOV, DType.U32, dst=b),
                Instruction(Op.ADD, DType.U32, dst=c, srcs=(a, b)),
                Instruction(Op.ST, DType.U32, srcs=(c,)),
            ),
            reg_count=ra.count,
        )
        launch = make_launch(program, regs=1)
        assert "reg-count-exceeded" in codes(check_defuse(launch), Severity.ERROR)


def _mem_program(instrs: tuple[Instruction, ...]) -> Program:
    return Program(items=instrs, reg_count=8)


def _ld(expr: AddrExpr, space: MemSpace = MemSpace.GLOBAL, width: int = 4) -> Instruction:
    return Instruction(Op.LD, DType.F32, dst=Reg(0), space=space, addr=expr,
                       width_bytes=width)


def _st(expr: AddrExpr | None, space: MemSpace = MemSpace.GLOBAL) -> Instruction:
    return Instruction(Op.ST, DType.F32, srcs=(Reg(0),), space=space, addr=expr)


class TestAddressPass:
    REGION = MemRegion("in", 4096, 1024)

    def test_contained_access_is_clean(self):
        program = _mem_program((_ld(AddrExpr(4096, (Term("lin_tid", 4),))),))
        launch = make_launch(program, regions=(self.REGION,))
        assert check_addresses(launch) == []

    def test_out_of_regions_is_error_with_kernel_attribution(self):
        program = _mem_program((_ld(AddrExpr(1 << 22, (Term("lin_tid", 4),))),))
        launch = make_launch(program, name="OOB 7", regions=(self.REGION,))
        diags = check_addresses(launch)
        assert codes(diags, Severity.ERROR) == {"out-of-regions"}
        assert diags[0].kernel == "OOB 7"
        assert "ld.global" in diags[0].instr

    def test_negative_address_is_error(self):
        program = _mem_program((_ld(AddrExpr(64, (Term("lin_tid", -8),))),))
        launch = make_launch(program, regions=(self.REGION,))
        assert "negative-address" in codes(check_addresses(launch), Severity.ERROR)

    def test_overflowing_address_is_error(self):
        program = _mem_program((_ld(AddrExpr(1 << 41)),))
        launch = make_launch(program, regions=(self.REGION,))
        assert "address-overflow" in codes(check_addresses(launch), Severity.ERROR)

    def test_padding_overhang_is_note_not_error(self):
        # Starts 8 bytes before the region, as padded conv windows do.
        program = _mem_program((_ld(AddrExpr(4088, (Term("lin_tid", 4),))),))
        launch = make_launch(program, regions=(self.REGION,))
        diags = check_addresses(launch)
        assert codes(diags) == {"region-overhang"}
        assert diags[0].severity is Severity.NOTE
        assert diags[0].data["before"] == 8

    def test_spanning_two_regions_is_error(self):
        flush = (MemRegion("a", 0, 256), MemRegion("b", 256, 256))
        program = _mem_program((_ld(AddrExpr(128, (Term("lin_tid", 8),))),))
        launch = make_launch(program, regions=flush)
        assert "region-alias" in codes(check_addresses(launch), Severity.ERROR)

    def test_unbound_loop_variable_is_error(self):
        program = _mem_program((_ld(AddrExpr(4096, (Term("rc", 4),))),))
        launch = make_launch(program, regions=(self.REGION,))
        diags = check_addresses(launch)
        assert codes(diags, Severity.ERROR) == {"unbound-symbol"}
        assert diags[0].data["symbol"] == "rc"

    def test_bound_loop_variable_uses_trip_range(self):
        # rc in [0, 199]: 200 * 4 = 800 bytes, within the 1024-byte region.
        inner = _ld(AddrExpr(4096, (Term("rc", 4),)))
        program = _mem_program((Loop("rc", 200, (inner,)),))
        launch = make_launch(program, regions=(self.REGION,))
        assert check_addresses(launch) == []
        # rc in [0, 499] walks 2000 bytes: past the region end.
        program = _mem_program((Loop("rc", 500, (inner,)),))
        launch = make_launch(program, regions=(self.REGION,))
        assert "region-overhang" in codes(check_addresses(launch))


class TestSharedMemoryPass:
    def test_missing_barrier_race_is_error(self):
        # Every thread stores to shared address 0, then loads it back:
        # a classic reduce-without-barrier defect.
        uniform = AddrExpr(0)
        program = _mem_program((
            _st(uniform, space=MemSpace.SHARED),
            _ld(uniform, space=MemSpace.SHARED),
        ))
        launch = make_launch(program, name="Racy 3", smem_bytes=64)
        diags = check_shared(launch)
        races = [d for d in diags if d.code == "smem-race"]
        assert races and races[0].severity is Severity.ERROR
        assert races[0].kernel == "Racy 3"

    def test_barrier_separates_phases(self):
        # Each thread fills its own slot, barriers, then every thread
        # reads slot 0 — the canonical reduce staging pattern.  Without
        # the BAR the cross-phase write/read pair would race.
        slot = AddrExpr(0, (Term("lin_tid", 4),))
        uniform = AddrExpr(0)
        program = _mem_program((
            _st(slot, space=MemSpace.SHARED),
            Instruction(Op.BAR, DType.NONE),
            _ld(uniform, space=MemSpace.SHARED),
        ))
        launch = make_launch(program, smem_bytes=256)
        assert "smem-race" not in codes(check_shared(launch))
        without_bar = _mem_program((
            _st(slot, space=MemSpace.SHARED),
            _ld(uniform, space=MemSpace.SHARED),
        ))
        launch = make_launch(without_bar, smem_bytes=256)
        assert "smem-race" in codes(check_shared(launch), Severity.ERROR)

    def test_per_thread_slots_do_not_race(self):
        slot = AddrExpr(0, (Term("lin_tid", 4),))
        program = _mem_program((
            _st(slot, space=MemSpace.SHARED),
            _ld(slot, space=MemSpace.SHARED),
        ))
        launch = make_launch(program, smem_bytes=256)
        assert "smem-race" not in codes(check_shared(launch))

    def test_write_write_collision_within_one_instruction(self):
        # Threads 0 and 8 map to the same shared cell: lin_tid % 8.
        folded = AddrExpr(0, (Term("lin_tid", 4, mod=8),))
        program = _mem_program((_st(folded, space=MemSpace.SHARED),))
        launch = make_launch(program, smem_bytes=64)
        assert "smem-race" in codes(check_shared(launch), Severity.ERROR)

    def test_smem_footprint_overflow_is_error(self):
        slot = AddrExpr(0, (Term("lin_tid", 4),))
        program = _mem_program((_st(slot, space=MemSpace.SHARED),))
        launch = make_launch(program, name="Fat 9", smem_bytes=64)  # needs 128
        diags = check_shared(launch)
        overflows = [d for d in diags if d.code == "smem-overflow"]
        assert overflows and overflows[0].severity is Severity.ERROR
        assert overflows[0].kernel == "Fat 9"

    def test_implicit_address_shared_accesses_are_skipped(self):
        program = _mem_program((
            _st(None, space=MemSpace.SHARED),
            _ld(None, space=MemSpace.SHARED),  # type: ignore[arg-type]
        ))
        launch = make_launch(program, smem_bytes=64)
        assert check_shared(launch) == []


class TestLintPass:
    def test_zero_trip_loop_with_body_is_error(self):
        body = (Instruction(Op.ADD, DType.U32, dst=Reg(0)),)
        program = Program(items=(Loop("rc", 0, body),), reg_count=2)
        diags = check_lints(make_launch(program))
        assert "zero-trip-loop" in codes(diags, Severity.ERROR)

    def test_single_trip_loop_is_note(self):
        body = (Instruction(Op.ADD, DType.U32, dst=Reg(0)),)
        program = Program(items=(Loop("rc", 1, body),), reg_count=2)
        assert "single-trip-loop" in codes(check_lints(make_launch(program)), Severity.NOTE)

    def test_uncoalesced_stride_is_warning(self):
        # Each lane strides 512 bytes: 32 lanes -> 32 distinct lines.
        region = MemRegion("w", 0, 1 << 20)
        program = _mem_program((_ld(AddrExpr(0, (Term("lin_tid", 512),))),))
        launch = make_launch(program, regions=(region,))
        diags = check_lints(launch)
        warns = [d for d in diags if d.code == "uncoalesced-access"]
        assert warns and warns[0].severity is Severity.WARNING
        assert warns[0].data["lines"] >= 16

    def test_unit_stride_and_broadcast_are_coalesced(self):
        region = MemRegion("in", 0, 1 << 20)
        program = _mem_program((
            _ld(AddrExpr(0, (Term("lin_tid", 4),))),
            _ld(AddrExpr(64)),  # warp-uniform broadcast
        ))
        launch = make_launch(program, regions=(region,))
        assert "uncoalesced-access" not in codes(check_lints(launch))

    def test_dtype_mismatch_is_warning(self):
        ra = RegisterAllocator()
        idx = ra.fresh()
        acc = ra.fresh()
        program = Program(
            items=(
                Instruction(Op.SHL, DType.U32, dst=idx),
                Instruction(Op.MAD, DType.F32, dst=acc, srcs=(idx,)),
            ),
            reg_count=ra.count,
        )
        diags = check_lints(make_launch(program))
        assert "dtype-mismatch" in codes(diags, Severity.WARNING)

    def test_cvt_bridges_dtypes_cleanly(self):
        ra = RegisterAllocator()
        idx = ra.fresh()
        as_f = ra.fresh()
        acc = ra.fresh()
        program = Program(
            items=(
                Instruction(Op.SHL, DType.U32, dst=idx),
                Instruction(Op.CVT, DType.F32, dst=as_f, srcs=(idx,)),
                Instruction(Op.MAD, DType.F32, dst=acc, srcs=(as_f,)),
            ),
            reg_count=ra.count,
        )
        assert "dtype-mismatch" not in codes(check_lints(make_launch(program)))

    def test_stranded_geometry_is_warning(self):
        program = Program(items=(), reg_count=0)
        launch = make_launch(program, block=(64, 1, 1), active=10)
        diags = check_lints(launch)
        assert "stranded-threads" in codes(diags, Severity.WARNING)

    def test_majority_active_geometry_is_clean(self):
        program = Program(items=(), reg_count=0)
        launch = make_launch(program, block=(64, 1, 1), active=40)
        assert "stranded-threads" not in codes(check_lints(launch))


class TestDriverAndReport:
    def _defective_launch(self) -> KernelLaunch:
        ra = RegisterAllocator()
        ghost = ra.fresh()
        dst = ra.fresh()
        program = Program(
            items=(Instruction(Op.ADD, DType.U32, dst=dst, srcs=(ghost,)),),
            reg_count=ra.count,
        )
        return make_launch(program, name="Bad 1")

    def test_analyze_launch_runs_all_passes(self):
        diags = analyze_launch(self._defective_launch())
        assert "unwritten-read" in codes(diags)

    def test_report_groups_by_kernel_and_counts(self):
        report = analyze_launches([self._defective_launch()], network="synthetic")
        assert report.kernel_count == 1
        assert report.has_errors
        assert "Bad 1" in report.by_kernel()
        text = report.format()
        assert "synthetic" in text and "error[unwritten-read]" in text

    def test_identical_signatures_analysed_once(self):
        launch = self._defective_launch()
        report = analyze_launches([launch, launch], network="dup")
        assert report.kernel_count == 2
        assert len(report.errors) == 1

    def test_json_report_is_machine_readable(self):
        report = analyze_launches([self._defective_launch()], network="synthetic")
        payload = json.loads(report.to_json())
        assert payload["network"] == "synthetic"
        assert payload["counts"]["error"] == 1
        diag = payload["diagnostics"][0]
        assert diag["severity"] == "error" and diag["kernel"] == "Bad 1"

    def test_verify_launches_raises_on_errors(self):
        with pytest.raises(KernelVerificationError) as exc:
            verify_launches([self._defective_launch()], network="synthetic")
        assert "unwritten-read" in str(exc.value)
        assert exc.value.report.has_errors

    def test_verify_launches_passes_clean_sequence(self):
        program = _mem_program(
            (_ld(AddrExpr(4096, (Term("lin_tid", 4),))),)
        )
        launch = make_launch(program, regions=(MemRegion("in", 4096, 1024),))
        report = verify_launches([launch], network="clean")
        assert isinstance(report, LintReport) and not report.has_errors


class TestCompileIntegration:
    def test_compile_network_verify_flag_passes_on_suite_network(self):
        from repro.core.suite import get_network
        from repro.kernels.compile import compile_network

        launches = compile_network(get_network("cifarnet"), verify=True)
        assert launches

    def test_compile_rejects_unbound_loop_variable_clearly(self, monkeypatch):
        # A builder that references a loop variable no loop binds must be
        # rejected at compile time with the kernel and symbol named —
        # not crash the simulator later with a KeyError.
        from repro.core.suite import get_network
        from repro.kernels import builders
        from repro.kernels.compile import compile_network
        from repro.kernels.validate import KernelValidationError

        real_build_softmax = builders.build_softmax

        def broken_build_softmax(classes, tmap):
            built = real_build_softmax(classes, tmap)
            bad = Instruction(
                Op.LD, DType.F32, dst=Reg(999),
                space=MemSpace.GLOBAL,
                addr=AddrExpr(0, (Term("phantom_var", 4),)),
            )
            program = Program(
                items=built.program.items[:-1] + (bad, built.program.items[-1]),
                reg_count=built.program.reg_count,
                entry_regs=built.program.entry_regs,
            )
            return builders.BuiltKernel(
                program=program,
                smem_bytes=built.smem_bytes,
                cmem_bytes=built.cmem_bytes,
                regions=built.regions,
            )

        monkeypatch.setattr(builders, "build_softmax", broken_build_softmax)
        with pytest.raises(KernelValidationError, match="phantom_var"):
            compile_network(get_network("cifarnet"))


class TestValidate:
    def test_unbound_symbols_found_with_instruction(self):
        from repro.kernels.validate import unbound_symbols

        bad = _ld(AddrExpr(0, (Term("ghost", 4),)))
        good = _ld(AddrExpr(0, (Term("rc", 4), Term("lin_tid", 1))))
        program = Program(items=(bad, Loop("rc", 4, (good,))), reg_count=4)
        found = unbound_symbols(program)
        assert [(i is bad, s) for i, s in found] == [(True, "ghost")]
