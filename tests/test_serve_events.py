"""Tests for the deterministic event queues of ``repro.serve.events``.

``EventQueue`` is the reference binary heap; ``SlottedEventQueue`` is
the bucketed fast path that must yield the *identical* event stream
under the no-time-travel invariant (pushes never schedule before the
most recently popped time).  The equivalence tests here replay random
interleaved push/pop schedules through both and compare element for
element.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.events import (
    ARRIVAL,
    COMPLETE,
    FLUSH,
    EventQueue,
    SlottedEventQueue,
)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, ARRIVAL, "c")
        queue.push(1.0, ARRIVAL, "a")
        queue.push(2.0, ARRIVAL, "b")
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for index in range(10):
            queue.push(5.0, FLUSH, index)
        assert [queue.pop().payload for _ in range(10)] == list(range(10))

    def test_ties_stable_across_kinds(self):
        queue = EventQueue()
        queue.push(1.0, COMPLETE, "first")
        queue.push(1.0, ARRIVAL, "second")
        queue.push(1.0, FLUSH, "third")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == [COMPLETE, ARRIVAL, FLUSH]

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(4.5, ARRIVAL)
        queue.push(2.5, ARRIVAL)
        assert queue.peek_time() == 2.5
        assert len(queue) == 2
        queue.pop()
        assert queue.peek_time() == 4.5

    def test_random_interleaving_is_sorted(self):
        rng = random.Random(1)
        queue = EventQueue()
        times = [rng.uniform(0, 100) for _ in range(500)]
        for t in times:
            queue.push(t, ARRIVAL)
        popped = [queue.pop().time_ms for _ in range(len(times))]
        assert popped == sorted(times)


def drain_schedule(queue, schedule, rng):
    """Replay *schedule* (list of push-time offsets) against *queue*.

    Interleaves pushes and pops the way the engine does: each pop
    advances a clock, and subsequent pushes land at or after it (the
    no-time-travel invariant).  Returns the popped (time_ms, seq)
    stream.
    """
    popped = []
    clock = 0.0
    pending = list(schedule)
    while pending or queue:
        # Push a random prefix of the remaining offsets at >= clock.
        while pending and (not queue or rng.random() < 0.6):
            offset = pending.pop()
            queue.push(clock + offset, ARRIVAL, len(popped))
        event = queue.pop()
        clock = event.time_ms
        popped.append((event.time_ms, event.seq))
    return popped


class TestSlottedEventQueue:
    def test_matches_reference_heap_on_random_schedules(self):
        for seed in range(20):
            rng = random.Random(seed)
            offsets = [
                rng.choice([0.0, 0.25, 0.5, 1.0, 1.5, rng.uniform(0, 12)])
                for _ in range(300)
            ]
            heap_stream = drain_schedule(
                EventQueue(), offsets, random.Random(seed + 1000)
            )
            slot_stream = drain_schedule(
                SlottedEventQueue(), offsets, random.Random(seed + 1000)
            )
            assert slot_stream == heap_stream

    @settings(max_examples=50, deadline=None)
    @given(
        offsets=st.lists(
            st.floats(0.0, 20.0, allow_nan=False), min_size=1, max_size=120
        ),
        slot_ms=st.sampled_from([0.5, 1.0, 2.0, 7.3]),
        seed=st.integers(0, 2**16),
    )
    def test_property_identical_streams(self, offsets, slot_ms, seed):
        heap_stream = drain_schedule(
            EventQueue(), list(offsets), random.Random(seed)
        )
        slot_stream = drain_schedule(
            SlottedEventQueue(slot_ms), list(offsets), random.Random(seed)
        )
        assert slot_stream == heap_stream

    def test_ties_break_by_insertion_order(self):
        queue = SlottedEventQueue()
        for index in range(10):
            queue.push(5.0, FLUSH, index)
        assert [queue.pop().payload for _ in range(10)] == list(range(10))

    def test_pop_same_time_returns_complete_batch(self):
        queue = SlottedEventQueue()
        queue.push(2.0, ARRIVAL, "a")
        queue.push(1.0, COMPLETE, "x")
        queue.push(1.0, ARRIVAL, "y")
        queue.push(3.0, FLUSH, "b")
        batch = queue.pop_same_time()
        assert [e.payload for e in batch] == ["x", "y"]
        assert [e.payload for e in queue.pop_same_time()] == ["a"]
        assert [e.payload for e in queue.pop_same_time()] == ["b"]
        assert not queue

    def test_pop_same_time_defers_pushes_at_current_timestamp(self):
        # An event pushed at the batch's own timestamp *during*
        # processing must surface in the NEXT call — exactly when the
        # reference heap would pop it.
        queue = SlottedEventQueue()
        queue.push(1.0, ARRIVAL, "first")
        batch = queue.pop_same_time()
        assert [e.payload for e in batch] == ["first"]
        queue.push(1.0, FLUSH, "second")
        assert [e.payload for e in queue.pop_same_time()] == ["second"]

    def test_push_into_current_bucket_stays_sorted(self):
        queue = SlottedEventQueue(slot_ms=10.0)
        queue.push(1.0, ARRIVAL, "a")
        queue.push(5.0, ARRIVAL, "c")
        assert queue.pop().payload == "a"
        # 3.0 shares the (10 ms) bucket already being drained.
        queue.push(3.0, ARRIVAL, "b")
        assert [queue.pop().payload for _ in range(2)] == ["b", "c"]

    def test_peek_len_and_bool(self):
        queue = SlottedEventQueue()
        assert queue.peek_time() is None
        assert not queue
        assert len(queue) == 0
        queue.push(4.5, ARRIVAL)
        queue.push(2.5, ARRIVAL)
        assert queue.peek_time() == 2.5
        assert len(queue) == 2
        assert queue
        queue.pop()
        assert queue.peek_time() == 4.5
        assert len(queue) == 1

    def test_invalid_slot_ms_rejected(self):
        with pytest.raises(ValueError, match="slot_ms"):
            SlottedEventQueue(slot_ms=0.0)
        with pytest.raises(ValueError, match="slot_ms"):
            SlottedEventQueue(slot_ms=-1.0)
