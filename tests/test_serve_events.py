"""Tests for the deterministic event heap of ``repro.serve.events``."""

from __future__ import annotations

import random

from repro.serve.events import ARRIVAL, COMPLETE, FLUSH, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, ARRIVAL, "c")
        queue.push(1.0, ARRIVAL, "a")
        queue.push(2.0, ARRIVAL, "b")
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for index in range(10):
            queue.push(5.0, FLUSH, index)
        assert [queue.pop().payload for _ in range(10)] == list(range(10))

    def test_ties_stable_across_kinds(self):
        queue = EventQueue()
        queue.push(1.0, COMPLETE, "first")
        queue.push(1.0, ARRIVAL, "second")
        queue.push(1.0, FLUSH, "third")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == [COMPLETE, ARRIVAL, FLUSH]

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(4.5, ARRIVAL)
        queue.push(2.5, ARRIVAL)
        assert queue.peek_time() == 2.5
        assert len(queue) == 2
        queue.pop()
        assert queue.peek_time() == 4.5

    def test_random_interleaving_is_sorted(self):
        rng = random.Random(1)
        queue = EventQueue()
        times = [rng.uniform(0, 100) for _ in range(500)]
        for t in times:
            queue.push(t, ARRIVAL)
        popped = [queue.pop().time_ms for _ in range(len(times))]
        assert popped == sorted(times)
