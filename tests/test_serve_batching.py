"""Property tests for the dynamic batcher (hypothesis).

The three contract invariants from the module docstring: popped batches
never exceed ``max_batch``; a batch is ready no later than the head
request's timeout; requests leave in FIFO order.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.batching import DynamicBatcher, Request


def _requests(arrivals: list[float]) -> list[Request]:
    ordered = sorted(arrivals)
    return [Request(i, "net", t) for i, t in enumerate(ordered)]


arrival_lists = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=64
)


class TestBatcherProperties:
    @given(
        arrivals=arrival_lists,
        max_batch=st.integers(1, 16),
        timeout=st.floats(0, 50, allow_nan=False),
    )
    def test_never_exceeds_max_batch(self, arrivals, max_batch, timeout):
        batcher = DynamicBatcher(max_batch, timeout)
        for request in _requests(arrivals):
            batcher.add(request)
        drained = 0
        while len(batcher):
            batch = batcher.pop_batch(now_ms=1e9, force=True)
            assert 1 <= len(batch) <= max_batch
            drained += len(batch)
        assert drained == len(arrivals)

    @given(
        arrivals=arrival_lists,
        max_batch=st.integers(1, 16),
        timeout=st.floats(0, 50, allow_nan=False),
    )
    def test_ready_no_later_than_head_timeout(self, arrivals, max_batch, timeout):
        # However requests trickle in, once the head request has waited
        # `timeout` the batcher reports ready — it never holds a request
        # past its co-batching deadline.
        batcher = DynamicBatcher(max_batch, timeout)
        for request in _requests(arrivals):
            batcher.add(request)
            deadline = batcher.deadline_ms()
            assert deadline == batcher.oldest_arrival_ms + timeout
            assert batcher.ready(deadline)
            assert batcher.ready(deadline + 1.0)

    @given(
        arrivals=arrival_lists,
        max_batch=st.integers(1, 16),
    )
    def test_not_ready_before_deadline_unless_full(self, arrivals, max_batch):
        timeout = 10.0
        batcher = DynamicBatcher(max_batch, timeout)
        for request in _requests(arrivals):
            batcher.add(request)
            if len(batcher) < max_batch:
                now = batcher.deadline_ms() - 1e-6
                assert not batcher.ready(now)
                assert batcher.pop_batch(now) == []
            else:
                assert batcher.ready(batcher.oldest_arrival_ms)

    @given(
        arrivals=arrival_lists,
        max_batch=st.integers(1, 16),
        timeout=st.floats(0, 50, allow_nan=False),
    )
    def test_fifo_within_and_across_batches(self, arrivals, max_batch, timeout):
        batcher = DynamicBatcher(max_batch, timeout)
        requests = _requests(arrivals)
        for request in requests:
            batcher.add(request)
        popped: list[Request] = []
        while len(batcher):
            popped.extend(batcher.pop_batch(now_ms=1e9, force=True))
        assert [r.id for r in popped] == [r.id for r in requests]


class TestBatcherEdges:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DynamicBatcher(0, 1.0)
        with pytest.raises(ValueError):
            DynamicBatcher(4, -1.0)

    def test_empty_batcher(self):
        batcher = DynamicBatcher(4, 1.0)
        assert len(batcher) == 0
        assert batcher.oldest_arrival_ms is None
        assert batcher.deadline_ms() is None
        assert not batcher.ready(100.0)
        assert batcher.pop_batch(100.0, force=True) == []

    def test_zero_timeout_is_immediately_ready(self):
        batcher = DynamicBatcher(4, 0.0)
        batcher.add(Request(0, "net", 5.0))
        assert batcher.ready(5.0)
