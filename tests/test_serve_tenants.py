"""Tests for multi-tenant workloads (``repro.serve.tenants``).

The load-bearing guarantee: each tenant's arrival stream is drawn from
its own private generator, so the offered load is independent of how
streams interleave — and therefore of the scheduler/admission policy
under test.  Comparing policies on a multi-tenant scenario compares
policies, not accidentally-perturbed workloads.
"""

from __future__ import annotations

from dataclasses import replace
from random import Random

import pytest

from repro.serve import (
    ClosedLoopWorkload,
    MultiTenantWorkload,
    PoissonWorkload,
    ServeConfig,
    ServeDevice,
    ServeSim,
    Tenant,
)
from repro.serve.tenants import DEFAULT_TENANT_NAME, default_tenant
from repro.serve.profiles import KernelTerm, LatencyProfile


def make_profile(network, platform, base_ms, per_item_ms=0.0):
    terms = (
        (KernelTerm(per_item_ms * 1e6, 1, 1, 1),) if per_item_ms else ()
    )
    return LatencyProfile(network, platform, 1.0, base_ms * 1e6, terms)


def drain(workload, seed=0, limit=10_000):
    """Exhaust an open-loop workload; returns tagged arrivals."""
    rng = Random(seed)
    frontier = list(workload.prime(rng))
    out = []
    while frontier and len(out) < limit:
        frontier.sort(key=lambda a: (a.time_ms, a.index))
        arrival = frontier.pop(0)
        out.append(arrival)
        nxt = workload.next_arrival(arrival, rng)
        if nxt is not None:
            frontier.append(nxt)
    return out


class TestTenantValidation:
    @pytest.mark.parametrize("kwargs,msg", [
        ({"name": "", "slo_ms": 10.0}, "non-empty"),
        ({"name": "t", "slo_ms": 0.0}, "slo_ms"),
        ({"name": "t", "slo_ms": 10.0, "priority": -1}, "priority"),
        ({"name": "t", "slo_ms": 10.0, "weight": 0.0}, "weight"),
    ])
    def test_invalid_tenants_rejected(self, kwargs, msg):
        with pytest.raises(ValueError, match=msg):
            Tenant(**kwargs)

    def test_default_tenant(self):
        tenant = default_tenant(42.0)
        assert tenant.name == DEFAULT_TENANT_NAME
        assert tenant.slo_ms == 42.0
        assert tenant.priority == 0

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultiTenantWorkload([
                (Tenant("a", slo_ms=1.0), PoissonWorkload(10.0, 5, ["net"])),
                (Tenant("a", slo_ms=2.0), PoissonWorkload(10.0, 5, ["net"])),
            ])

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiTenantWorkload([])


class TestStreamIndependence:
    def parts(self):
        return [
            (Tenant("a", slo_ms=10.0),
             PoissonWorkload(200.0, 80, ["net"])),
            (Tenant("b", slo_ms=20.0, priority=1),
             PoissonWorkload(300.0, 120, ["rnn"])),
        ]

    def test_arrivals_tagged_with_owner(self):
        arrivals = drain(MultiTenantWorkload(self.parts()))
        assert {a.tenant for a in arrivals} == {"a", "b"}
        assert all(a.network == "net" for a in arrivals if a.tenant == "a")
        assert all(a.network == "rnn" for a in arrivals if a.tenant == "b")
        assert sum(a.tenant == "a" for a in arrivals) == 80
        assert sum(a.tenant == "b" for a in arrivals) == 120

    def test_stream_unperturbed_by_other_tenants(self):
        """Tenant a's arrival times are identical whether or not
        tenant b exists — each stream owns its generator."""
        alone = drain(MultiTenantWorkload(self.parts()[:1]))
        mixed = drain(MultiTenantWorkload(self.parts()))
        a_alone = [(x.time_ms, x.network) for x in alone]
        a_mixed = [(x.time_ms, x.network) for x in mixed if x.tenant == "a"]
        assert a_mixed == a_alone

    def test_reprime_reproduces_stream(self):
        workload = MultiTenantWorkload(self.parts())
        first = [(a.time_ms, a.tenant) for a in drain(workload, seed=3)]
        second = [(a.time_ms, a.tenant) for a in drain(workload, seed=3)]
        assert second == first


class TestEngineAttribution:
    def test_per_tenant_stats_partition_totals(self, tiny_gpu):
        fleet = [
            ServeDevice(f"dev#{i}", replace(tiny_gpu, name="Dev"))
            for i in range(2)
        ]
        profiles = {("net", "Dev"): make_profile("net", "Dev", 1.0, 0.2)}
        workload = MultiTenantWorkload([
            (Tenant("open", slo_ms=15.0),
             PoissonWorkload(400.0, 200, ["net"])),
            (Tenant("closed", slo_ms=50.0, priority=1),
             ClosedLoopWorkload(4, 100, ["net"], think_ms=0.5)),
        ])
        config = ServeConfig(
            slo_ms=15.0, max_batch=4, max_queue=16,
            scheduler="least-loaded", seed=17, admission="slo-aware",
        )
        stats = ServeSim(fleet, profiles, workload, config).run("fast")
        per = stats.per_tenant
        assert set(per) == {"open", "closed"}
        assert sum(t.offered for t in per.values()) == stats.offered
        assert sum(t.completed for t in per.values()) == stats.completed
        assert sum(t.shed for t in per.values()) == stats.shed
        assert sum(t.energy_j for t in per.values()) == pytest.approx(
            stats.energy["total_j"]
        )
        # Per-tenant SLOs differ from the fleet default and are the
        # ones attainment is judged against.
        assert per["open"].slo_ms == 15.0
        assert per["closed"].slo_ms == 50.0

    def test_single_stream_runs_attribute_to_default_tenant(self, tiny_gpu):
        fleet = [ServeDevice("dev#0", replace(tiny_gpu, name="Dev"))]
        profiles = {("net", "Dev"): make_profile("net", "Dev", 1.0)}
        config = ServeConfig(slo_ms=10.0, seed=1)
        stats = ServeSim(
            fleet, profiles, PoissonWorkload(100.0, 50, ["net"]), config
        ).run("fast")
        assert set(stats.per_tenant) == {DEFAULT_TENANT_NAME}
        assert stats.per_tenant[DEFAULT_TENANT_NAME].offered == 50
        assert stats.per_tenant[DEFAULT_TENANT_NAME].slo_ms == 10.0
