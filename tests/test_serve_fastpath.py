"""The event-loop equivalence gate: fast must be bit-identical to heap.

The slotted fast path's whole claim is *unobservability* — any
scenario, any pipeline, the same ``ServeStats`` digest as the
reference binary heap.  These tests drive both loops across the
scheduler x workload x pipeline matrix and through hypothesis-random
scenarios, comparing full ``to_dict()`` payloads (not just digests, so
failures show the diverging field).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    AutoscaleConfig,
    BurstyWorkload,
    ClosedLoopWorkload,
    DiurnalWorkload,
    MultiTenantWorkload,
    PoissonWorkload,
    ServeConfig,
    ServeDevice,
    ServeSim,
    Tenant,
    make_pipeline,
)
from repro.serve.profiles import KernelTerm, LatencyProfile


def make_profile(
    network: str, platform: str, base_ms: float, per_item_ms: float = 0.0
) -> LatencyProfile:
    terms = (
        (KernelTerm(per_item_ms * 1e6, 1, 1, 1),) if per_item_ms else ()
    )
    return LatencyProfile(
        network, platform, 1.0, base_ms * 1e6, terms,
        dynamic_j=0.02, static_watts=30.0,
    )


@pytest.fixture()
def fleet_profiles(tiny_gpu):
    from dataclasses import replace

    fleet = [
        ServeDevice(f"dev#{i}", replace(tiny_gpu, name="Dev"))
        for i in range(3)
    ]
    profiles = {
        ("net", "Dev"): make_profile("net", "Dev", 2.0, 0.4),
        ("rnn", "Dev"): make_profile("rnn", "Dev", 0.3, 0.05),
    }
    return fleet, profiles


def both_loops(fleet, profiles, workload, config, pipeline=None):
    sim = ServeSim(fleet, profiles, workload, config, pipeline)
    fast = sim.run("fast")
    heap = sim.run("heap")
    return fast, heap


WORKLOADS = {
    "poisson": lambda: PoissonWorkload(800.0, 400, ["net", "rnn"]),
    "bursty": lambda: BurstyWorkload(
        1200.0, 400, ["net"], on_ms=20.0, off_ms=60.0, off_factor=0.2
    ),
    "diurnal": lambda: DiurnalWorkload(
        900.0, 400, ["net", "rnn"], period_ms=200.0, segments=16
    ),
    "closed": lambda: ClosedLoopWorkload(8, 300, ["net"], think_ms=1.0),
    "tenants": lambda: MultiTenantWorkload([
        (Tenant("a", slo_ms=8.0),
         DiurnalWorkload(500.0, 200, ["net"], period_ms=100.0, segments=8)),
        (Tenant("b", slo_ms=30.0, priority=1),
         PoissonWorkload(400.0, 150, ["rnn"])),
        (Tenant("c", slo_ms=60.0, priority=2),
         ClosedLoopWorkload(3, 100, ["net"], think_ms=2.0)),
    ]),
}


class TestLoopEquivalence:
    @pytest.mark.parametrize("scheduler", [
        "round-robin", "least-loaded", "latency-aware",
    ])
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    def test_all_schedulers_all_workloads(
        self, fleet_profiles, scheduler, workload_name
    ):
        fleet, profiles = fleet_profiles
        config = ServeConfig(
            slo_ms=10.0, max_batch=4, batch_timeout_ms=1.0,
            max_queue=16, scheduler=scheduler, seed=5,
        )
        fast, heap = both_loops(
            fleet, profiles, WORKLOADS[workload_name](), config
        )
        assert fast.to_dict() == heap.to_dict()
        assert fast.digest() == heap.digest()

    def test_full_pipeline_admission_and_autoscale(self, fleet_profiles):
        fleet, profiles = fleet_profiles
        profiles = dict(profiles)
        # Scale-ups clone the gp102 template, which needs its own
        # profile slice (keyed by the platform's canonical name).
        profiles[("net", "GP102")] = make_profile("net", "GP102", 2.5, 0.5)
        profiles[("rnn", "GP102")] = make_profile("rnn", "GP102", 0.4, 0.08)
        config = ServeConfig(
            slo_ms=10.0, max_batch=4, max_queue=8,
            scheduler="least-loaded", seed=2, admission="slo-aware",
        )
        pipeline = make_pipeline(
            admission="slo-aware",
            autoscale=AutoscaleConfig(
                template="gp102", min_devices=1, max_devices=5,
                interval_ms=5.0, cooldown_ms=10.0,
            ),
        )
        fast, heap = both_loops(
            fleet, profiles, WORKLOADS["tenants"](), config, pipeline
        )
        assert fast.to_dict() == heap.to_dict()
        # The pipeline actually did something in this scenario — the
        # equivalence must cover sheds and scale events, not idle paths.
        assert fast.autoscale["events"]

    def test_single_device_max_batch_one(self, fleet_profiles):
        fleet, profiles = fleet_profiles
        config = ServeConfig(
            slo_ms=5.0, max_batch=1, max_queue=4,
            scheduler="round-robin", seed=9, admission="slo-aware",
        )
        fast, heap = both_loops(
            fleet[:1], profiles, PoissonWorkload(600.0, 300, ["net"]), config
        )
        assert fast.to_dict() == heap.to_dict()
        assert fast.shed > 0  # overloaded tiny queue: shed paths covered

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rps=st.floats(50.0, 2000.0),
        requests=st.integers(1, 250),
        max_batch=st.integers(1, 6),
        max_queue=st.integers(1, 32),
        timeout_ms=st.floats(0.0, 4.0),
        scheduler=st.sampled_from(
            ["round-robin", "least-loaded", "latency-aware"]
        ),
        admission=st.sampled_from(["none", "slo-aware"]),
        devices=st.integers(1, 4),
    )
    def test_random_scenarios(
        self, tiny_gpu, seed, rps, requests, max_batch, max_queue,
        timeout_ms, scheduler, admission, devices,
    ):
        from dataclasses import replace

        fleet = [
            ServeDevice(f"dev#{i}", replace(tiny_gpu, name="Dev"))
            for i in range(devices)
        ]
        profiles = {("net", "Dev"): make_profile("net", "Dev", 1.0, 0.2)}
        config = ServeConfig(
            slo_ms=6.0, max_batch=max_batch, batch_timeout_ms=timeout_ms,
            max_queue=max_queue, scheduler=scheduler, seed=seed,
            admission=admission,
        )
        workload = PoissonWorkload(rps, requests, ["net"])
        fast, heap = both_loops(fleet, profiles, workload, config)
        assert fast.to_dict() == heap.to_dict()
