"""Tests for the profiling front-ends: instmix, footprint, nvprof, stats."""

from __future__ import annotations

import pytest

from repro.core.suite import list_networks
from repro.gpu import SimOptions, simulate_network
from repro.isa.dtypes import DType
from repro.isa.opcodes import Pipe
from repro.kernels.compile import compiled_network
from repro.platforms import GP102
from repro.profiling.instmix import (
    dtype_mix_per_kernel,
    f32_fraction,
    kernel_histogram,
    network_histogram,
    opcode_mix,
    program_histogram,
    top_ops,
)
from repro.profiling.memfootprint import footprint, peak_activation_bytes
from repro.profiling.nvprof import format_profile, profiles_from_result
from repro.profiling.stall import FIGURE7_ORDER, StallReason
from repro.profiling.stats import KernelStats


class TestInstMix:
    def test_program_histogram_matches_dynamic_count(self):
        kernel = compiled_network("cifarnet")[0]
        hist = program_histogram(kernel.program)
        assert sum(hist.values()) == kernel.program.dynamic_count()

    def test_kernel_histogram_scales_by_threads(self):
        kernel = compiled_network("cifarnet")[0]
        per_thread = sum(program_histogram(kernel.program).values())
        total = sum(kernel_histogram(kernel).values())
        assert total == per_thread * kernel.active_threads * kernel.total_blocks

    @pytest.mark.parametrize("name", list_networks())
    def test_opcode_mix_is_distribution(self, name):
        mix = opcode_mix(name)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in mix.values())

    def test_rnn_mix_lacks_shl(self):
        assert opcode_mix("gru").get("shl", 0.0) < 0.01

    def test_cnn_mix_has_shl_and_mul(self):
        mix = opcode_mix("alexnet")
        assert mix["shl"] > 0.04 and mix["mul"] > 0.04

    def test_top_ops_ranked(self):
        ranked = top_ops(("cifarnet", "gru"), n=5)
        shares = [share for _, share in ranked]
        assert shares == sorted(shares, reverse=True)
        assert len(ranked) == 5

    def test_dtype_mix_covers_all_kernels(self):
        mixes = dtype_mix_per_kernel("cifarnet")
        assert len(mixes) == len(compiled_network("cifarnet"))
        for _, mix in mixes:
            if mix:
                assert sum(mix.values()) == pytest.approx(1.0)

    def test_integer_dominance(self):
        for name in ("alexnet", "resnet"):
            assert f32_fraction(name) < 0.5

    def test_network_histogram_cached(self):
        a = network_histogram("gru")
        b = network_histogram("gru")
        assert a is b


class TestFootprint:
    def test_rnn_under_500kb(self):
        assert footprint("gru").total_kb < 500
        assert footprint("lstm").total_kb < 500

    def test_weights_dominate_large_cnns(self):
        rep = footprint("alexnet")
        assert rep.weight_bytes > rep.peak_activation_bytes

    def test_peak_activation_accounts_for_shortcuts(self):
        from repro.core.suite import get_network

        graph = get_network("resnet")
        peak = peak_activation_bytes(graph)
        # The shortcut keeps at least two 256x56x56 tensors live at once.
        assert peak >= 2 * 4 * 256 * 56 * 56

    def test_footprint_ordering_tracks_model_size(self):
        assert (
            footprint("alexnet").total_bytes
            > footprint("resnet").total_bytes
            > footprint("squeezenet").total_bytes
            > footprint("cifarnet").total_bytes
        )


class TestNvprof:
    @pytest.fixture(scope="class")
    def profiles(self):
        result = simulate_network("cifarnet", GP102, SimOptions().light())
        return profiles_from_result(result)

    def test_per_category_profiles(self, profiles):
        categories, summary = profiles
        assert {p.scope for p in categories} <= {"Conv", "Pooling", "FC", "Others"}
        assert summary.scope == "cifarnet"

    def test_fractions_normalized(self, profiles):
        categories, summary = profiles
        for profile in categories + [summary]:
            assert sum(profile.fractions.values()) == pytest.approx(1.0)

    def test_top_reason_is_valid(self, profiles):
        _, summary = profiles
        assert summary.top_reason() in StallReason

    def test_format_profile_renders(self, profiles):
        _, summary = profiles
        text = format_profile(summary)
        assert "cifarnet" in text and "%" in text

    def test_figure7_order_covers_all_reasons(self):
        assert set(FIGURE7_ORDER) == set(StallReason)


class TestStats:
    def test_merge_accumulates(self):
        a = KernelStats()
        a.cycles = 10
        a.issued_by_pipe[Pipe.SP] = 5
        a.stalls[StallReason.SYNC] = 2
        b = KernelStats()
        b.cycles = 7
        b.issued_by_pipe[Pipe.SP] = 3
        a.merge(b)
        assert a.cycles == 17
        assert a.issued_by_pipe[Pipe.SP] == 8

    def test_scale_events_leaves_cycles(self):
        s = KernelStats()
        s.cycles = 100
        s.issued = 10
        s.scale_events(3.0)
        assert s.cycles == 100
        assert s.issued == 30

    def test_miss_ratios_safe_on_empty(self):
        s = KernelStats()
        assert s.l1_miss_ratio == 0.0
        assert s.l2_miss_ratio == 0.0
        assert s.stall_fractions() == {}
