"""Shared pytest fixtures.

Simulation-based tests use the ``light`` SimOptions variant (heavier
sampling, fewer resident blocks) so the whole suite stays fast on a
single core; the full-fidelity settings are exercised by the benchmark
harness instead.
"""

from __future__ import annotations

import pytest

from repro.gpu.config import GpuConfig, SimOptions


@pytest.fixture(scope="session")
def light_options() -> SimOptions:
    """Cheap simulation options for unit/integration tests."""
    return SimOptions().light()


@pytest.fixture(scope="session")
def tiny_gpu() -> GpuConfig:
    """A small GPU configuration that keeps waves short in tests."""
    return GpuConfig(
        name="TestGPU",
        num_sms=4,
        cores_per_sm=128,
        clock_ghz=1.0,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        shared_mem_per_sm=96 * 1024,
        l1_size=32 * 1024,
        l2_size=512 * 1024,
        dram_gb_per_s=100.0,
    )
