"""Tests for the declarative scenario loader (``repro.serve.scenario``).

Scenarios are validated eagerly and completely at load time — every
unknown key, unknown network, or out-of-range knob is a
:class:`ScenarioError` naming the offender, never a mid-run surprise.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import ScenarioError, load_scenario
from repro.serve.scenario import scenario_from_dict


def minimal(**overrides):
    data = {
        "scenario": {"name": "t"},
        "fleet": {"devices": "gp102:2"},
        "serving": {"scheduler": "least-loaded", "slo_ms": 30.0},
        "tenants": [
            {
                "name": "only",
                "slo_ms": 30.0,
                "arrival": {
                    "kind": "poisson",
                    "rps": 100.0,
                    "requests": 50,
                    "networks": ["gru"],
                },
            },
        ],
    }
    data.update(overrides)
    return data


class TestHappyPath:
    def test_minimal_scenario(self):
        scenario = scenario_from_dict(minimal())
        assert scenario.name == "t"
        assert scenario.networks == ("gru",)
        assert [t.name for t in scenario.tenants] == ["only"]
        assert scenario.config.scheduler == "least-loaded"
        assert scenario.config.slo_ms == 30.0
        assert scenario.autoscale is None
        assert len(scenario.fleet()) == 2

    def test_defaults_flow_through(self):
        scenario = scenario_from_dict(minimal())
        assert scenario.seed == 0
        assert scenario.loop == "fast"
        assert scenario.config.admission == "none"

    def test_full_scenario_round_trip(self):
        data = minimal()
        data["scenario"].update(seed=9, loop="heap", description="d")
        data["admission"] = {
            "policy": "slo-aware",
            "priority_fill": [1.0, 0.5],
            "slo_slack": 2.0,
        }
        data["autoscale"] = {
            "template": "gp102",
            "min_devices": 1,
            "max_devices": 4,
        }
        scenario = scenario_from_dict(data)
        assert scenario.seed == 9
        assert scenario.loop == "heap"
        assert scenario.config.admission == "slo-aware"
        assert scenario.autoscale.max_devices == 4
        described = scenario.describe()
        assert described["scenario"] == "t"
        assert described["admission"] == "slo-aware"
        assert "gp102" in described["autoscale"]
        # The pipeline builds with the declared admission kwargs.
        pipeline = scenario.pipeline()
        assert pipeline.admission.priority_fill == (1.0, 0.5)

    def test_workload_mixes_all_arrival_kinds(self):
        data = minimal()
        data["tenants"] = [
            {"name": "a", "slo_ms": 10.0, "arrival": {
                "kind": "poisson", "rps": 10.0, "requests": 5,
                "networks": ["gru"]}},
            {"name": "b", "slo_ms": 10.0, "arrival": {
                "kind": "bursty", "rps": 10.0, "requests": 5,
                "networks": ["alexnet"], "on_ms": 5.0, "off_ms": 5.0}},
            {"name": "c", "slo_ms": 10.0, "arrival": {
                "kind": "diurnal", "base_rps": 10.0, "requests": 5,
                "networks": ["gru"], "period_ms": 100.0}},
            {"name": "d", "slo_ms": 10.0, "priority": 1, "arrival": {
                "kind": "closed", "clients": 2, "requests": 5,
                "networks": ["gru"], "think_ms": 1.0}},
        ]
        scenario = scenario_from_dict(data)
        workload = scenario.workload()
        assert [t.name for t in workload.tenants] == ["a", "b", "c", "d"]
        assert scenario.networks == ("alexnet", "gru")


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="serv1ng"):
            scenario_from_dict({**minimal(), "serv1ng": {}})

    def test_unknown_serving_key(self):
        data = minimal()
        data["serving"]["schduler"] = "x"
        with pytest.raises(ScenarioError, match="schduler"):
            scenario_from_dict(data)

    def test_unknown_network_named(self):
        data = minimal()
        data["tenants"][0]["arrival"]["networks"] = ["transformer9000"]
        with pytest.raises(ScenarioError, match="transformer9000"):
            scenario_from_dict(data)

    def test_unknown_scheduler(self):
        data = minimal()
        data["serving"]["scheduler"] = "psychic"
        with pytest.raises(ScenarioError, match="psychic"):
            scenario_from_dict(data)

    def test_unknown_loop(self):
        data = minimal()
        data["scenario"]["loop"] = "turbo"
        with pytest.raises(ScenarioError, match="turbo"):
            scenario_from_dict(data)

    def test_unknown_arrival_kind(self):
        data = minimal()
        data["tenants"][0]["arrival"]["kind"] = "fractal"
        with pytest.raises(ScenarioError, match="fractal"):
            scenario_from_dict(data)

    def test_arrival_key_from_wrong_kind(self):
        data = minimal()
        # think_ms belongs to closed-loop arrivals, not poisson.
        data["tenants"][0]["arrival"]["think_ms"] = 5.0
        with pytest.raises(ScenarioError, match="think_ms"):
            scenario_from_dict(data)

    def test_bad_admission_kwargs_fail_at_load(self):
        data = minimal()
        data["admission"] = {"policy": "slo-aware", "slo_slack": -1.0}
        with pytest.raises(ScenarioError, match="slo_slack"):
            scenario_from_dict(data)

    def test_bad_autoscale_bounds_fail_at_load(self):
        data = minimal()
        data["autoscale"] = {
            "template": "gp102", "min_devices": 5, "max_devices": 2,
        }
        with pytest.raises(ScenarioError):
            scenario_from_dict(data)

    def test_missing_tenants(self):
        data = minimal()
        data["tenants"] = []
        with pytest.raises(ScenarioError, match="tenant"):
            scenario_from_dict(data)

    def test_non_table_sections_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_from_dict({**minimal(), "serving": "fast please"})


class TestFileLoading:
    def test_toml_file(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            "[scenario]\nname = \"from-toml\"\n"
            "[fleet]\ndevices = \"gp102:1\"\n"
            "[serving]\nslo_ms = 25.0\n"
            "[[tenants]]\nname = \"t\"\nslo_ms = 25.0\n"
            "[tenants.arrival]\nkind = \"poisson\"\nrps = 50.0\n"
            "requests = 10\nnetworks = [\"gru\"]\n"
        )
        scenario = load_scenario(path)
        assert scenario.name == "from-toml"
        assert scenario.networks == ("gru",)

    def test_json_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal()))
        scenario = load_scenario(path)
        assert scenario.name == "t"

    def test_dict_passthrough(self):
        assert load_scenario(minimal()).name == "t"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.toml")

    def test_malformed_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[scenario\nname=")
        with pytest.raises(ScenarioError):
            load_scenario(path)

    def test_trace_paths_resolve_against_scenario_dir(self, tmp_path):
        trace = tmp_path / "arrivals.json"
        trace.write_text(json.dumps([
            {"time_ms": 0.0, "network": "gru"},
            {"time_ms": 1.0, "network": "gru"},
        ]))
        data = minimal()
        data["tenants"][0]["arrival"] = {
            "kind": "trace", "path": "arrivals.json",
        }
        path = tmp_path / "s.json"
        path.write_text(json.dumps(data))
        scenario = load_scenario(path)
        assert scenario.networks == ("gru",)

    def test_committed_examples_load(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parents[1] / "examples"
        day = load_scenario(examples / "day_in_the_life.toml")
        assert [t.name for t in day.tenants] == [
            "interactive", "scoring", "reporting",
        ]
        assert len(day.fleet()) == 100
        smoke = load_scenario(examples / "serve_scale.toml")
        assert len(smoke.fleet()) == 20
        assert smoke.autoscale is not None
