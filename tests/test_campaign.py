"""Campaign specs, expansion, dedup and end-to-end execution.

Everything here runs at light fidelity on one or two small networks so
the whole module stays in unit-test time; the full-size example
campaign (``examples/l1_sweep_campaign.toml``) is exercised by CI's
campaign-smoke job instead.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignError,
    campaign_from_dict,
    expand_points,
    load_campaign,
    plan_campaign,
    point_spec,
    run_campaign,
)
from repro.campaign.expand import CampaignPoint, point_options
from repro.runs import Executor, ResultStore


def spec_dict(**over) -> dict:
    """A small valid raw spec; keyword args replace [axes] entries."""
    axes = {"network": ["cifarnet", "gru"]}
    axes.update(over)
    return {
        "campaign": {"name": "t", "fidelity": "light"},
        "axes": axes,
    }


class TestSpecValidation:
    def test_minimal_spec_fills_axis_defaults(self):
        spec = campaign_from_dict(spec_dict())
        assert spec.axis("network") == ("cifarnet", "gru")
        assert spec.axis("platform") == ("gp102",)
        assert spec.axis("l1_kb") == (None,)
        assert spec.axis("scheduler") == ("gto",)
        assert spec.axis("fidelity") == ("light",)
        assert spec.axis("batch") == (1,)
        assert spec.objective_labels() == (
            "min:latency_ms", "min:energy_per_inf_j", "min:footprint_kb",
        )

    def test_missing_name_rejected(self):
        with pytest.raises(CampaignError, match="name"):
            campaign_from_dict({"axes": {"network": ["gru"]}})

    def test_missing_network_axis_rejected(self):
        with pytest.raises(CampaignError, match="network"):
            campaign_from_dict({"campaign": {"name": "t"}, "axes": {}})

    def test_unknown_network_named_in_error(self):
        with pytest.raises(CampaignError, match="nonsense"):
            campaign_from_dict(spec_dict(network=["nonsense"]))

    def test_unknown_platform_rejected(self):
        with pytest.raises(CampaignError, match="platform"):
            campaign_from_dict(spec_dict(platform=["gtx9000"]))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(CampaignError, match="scheduler"):
            campaign_from_dict(spec_dict(scheduler=["fifo"]))

    def test_unknown_axis_rejected(self):
        with pytest.raises(CampaignError, match="voltage"):
            campaign_from_dict(spec_dict(voltage=[1, 2]))

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "big"])
    def test_bad_l1_values_rejected(self, bad):
        with pytest.raises(CampaignError, match="l1_kb"):
            campaign_from_dict(spec_dict(l1_kb=[bad]))

    def test_l1_default_keyword_maps_to_none(self):
        spec = campaign_from_dict(spec_dict(l1_kb=["default", 128]))
        assert spec.axis("l1_kb") == (None, 128)

    @pytest.mark.parametrize("bad", [0, -3, 2.5, False])
    def test_bad_batch_values_rejected(self, bad):
        with pytest.raises(CampaignError, match="batch"):
            campaign_from_dict(spec_dict(batch=[bad]))

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(CampaignError, match="repeats"):
            campaign_from_dict(spec_dict(batch=[1, 2, 1]))

    def test_zip_mode_length_mismatch_rejected(self):
        data = spec_dict(l1_kb=[16, 32, 64])
        data["campaign"]["mode"] = "zip"
        with pytest.raises(CampaignError, match="zip"):
            campaign_from_dict(data)

    def test_unknown_objective_metric_rejected(self):
        data = spec_dict()
        data["frontier"] = {"objectives": ["min:goodness"]}
        with pytest.raises(CampaignError, match="goodness"):
            campaign_from_dict(data)

    def test_bad_objective_direction_rejected(self):
        data = spec_dict()
        data["frontier"] = {"objectives": ["least:latency_ms"]}
        with pytest.raises(CampaignError, match="direction"):
            campaign_from_dict(data)

    def test_max_objective_parses_with_negative_sign(self):
        data = spec_dict()
        data["frontier"] = {"objectives": ["max:throughput_rps", "energy_j"]}
        spec = campaign_from_dict(data)
        assert spec.objectives == (("throughput_rps", -1), ("energy_j", 1))
        assert spec.objective_labels() == ("max:throughput_rps", "min:energy_j")

    def test_negative_tolerance_rejected(self):
        data = spec_dict()
        data["frontier"] = {"tolerance": -0.1}
        with pytest.raises(CampaignError, match="tolerance"):
            campaign_from_dict(data)

    def test_filter_with_unknown_axis_rejected(self):
        data = spec_dict()
        data["filters"] = [{"wattage": [5]}]
        with pytest.raises(CampaignError, match="wattage"):
            campaign_from_dict(data)

    def test_expansion_size_guard(self):
        data = spec_dict(
            batch=list(range(1, 1001)), l1_kb=list(range(0, 1000))
        )
        with pytest.raises(CampaignError, match="limit"):
            campaign_from_dict(data)


class TestLoadCampaign:
    def test_toml_file(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            '[campaign]\nname = "toml-c"\nfidelity = "light"\n'
            '[axes]\nnetwork = ["gru"]\nbatch = [1, 2]\n'
        )
        spec = load_campaign(path)
        assert spec.name == "toml-c"
        assert spec.axis("batch") == (1, 2)

    def test_json_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(spec_dict()))
        assert load_campaign(path).name == "t"

    def test_suffixless_file_tries_both_formats(self, tmp_path):
        path = tmp_path / "campaign"
        path.write_text(json.dumps(spec_dict()))
        assert load_campaign(path).name == "t"

    def test_missing_file_raises_campaign_error(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            load_campaign(tmp_path / "nope.toml")

    def test_unparseable_file_raises_campaign_error(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text("this is not toml [")
        with pytest.raises(CampaignError, match="cannot parse"):
            load_campaign(path)

    def test_dict_passes_through(self):
        assert load_campaign(spec_dict()).name == "t"


class TestExpansion:
    def test_cartesian_size_is_the_product(self):
        spec = campaign_from_dict(
            spec_dict(l1_kb=[16, 32], scheduler=["gto", "lrr"], batch=[1, 4])
        )
        points = expand_points(spec)
        assert len(points) == 2 * 2 * 2 * 2
        assert len(set(points)) == len(points)

    def test_zip_pairs_elementwise_with_broadcast(self):
        data = spec_dict(network=["cifarnet", "gru"], l1_kb=[16, 32])
        data["campaign"]["mode"] = "zip"
        spec = campaign_from_dict(data)
        points = expand_points(spec)
        assert [(p.network, p.l1_kb, p.batch) for p in points] == [
            ("cifarnet", 16, 1), ("gru", 32, 1),
        ]

    def test_filters_drop_only_full_matches(self):
        data = spec_dict(l1_kb=[16, 32], batch=[1, 4])
        data["filters"] = [{"network": ["gru"], "l1_kb": [16]}]
        spec = campaign_from_dict(data)
        points = expand_points(spec)
        assert not any(p.network == "gru" and p.l1_kb == 16 for p in points)
        # partial matches survive: gru@32 and cifarnet@16 both remain
        assert any(p.network == "gru" and p.l1_kb == 32 for p in points)
        assert any(p.network == "cifarnet" and p.l1_kb == 16 for p in points)
        assert len(points) == 2 * 2 * 2 - 2

    def test_filter_matches_resolved_default_l1(self):
        # gp102's default L1 is 64 KB, so filtering l1_kb=64 also drops
        # the "default" points.
        data = spec_dict(l1_kb=["default", 128])
        data["filters"] = [{"l1_kb": [64]}]
        spec = campaign_from_dict(data)
        assert all(p.l1_kb == 128 for p in expand_points(spec))

    def test_batch_variants_share_one_run_spec(self):
        spec = campaign_from_dict(spec_dict(batch=[1, 2, 4, 8]))
        plan = plan_campaign(spec)
        assert plan.requested == 2 * 4
        assert len(plan.specs) == 2  # one per network
        assert plan.deduped == 6

    def test_default_l1_dedupes_with_explicit_platform_size(self):
        spec = campaign_from_dict(spec_dict(l1_kb=["default", 64]))
        plan = plan_campaign(spec)
        assert plan.requested == 4
        assert len(plan.specs) == 2

    def test_point_options_follow_fidelity_and_scheduler(self):
        point = CampaignPoint("gru", "gp102", 64, "lrr", "light", 1)
        options = point_options(point)
        assert options.scheduler == "lrr"
        assert options != point_options(
            CampaignPoint("gru", "gp102", 64, "lrr", "default", 1)
        )

    def test_point_spec_applies_l1_override(self):
        run = point_spec(CampaignPoint("gru", "gp102", 16, "gto", "light", 1))
        assert run.config.l1_size == 16 * 1024


class TestRunCampaign:
    def test_end_to_end_and_warm_rerun_is_free(self, tmp_path):
        spec = campaign_from_dict(spec_dict(l1_kb=[16, 64], batch=[1, 8]))
        store = ResultStore(tmp_path)
        cold = run_campaign(spec, store=store)
        assert cold.report.fresh == len(cold.plan.specs) == 4
        assert len(cold.rows) == cold.plan.requested == 8
        assert cold.frontier and len(cold.frontier) <= len(cold.rows)
        assert cold.ok

        warm = run_campaign(spec, store=ResultStore(tmp_path))
        assert warm.report.fresh == 0
        assert warm.report.cached == 4
        assert [r.to_dict() for r in warm.rows] == [
            r.to_dict() for r in cold.rows
        ]

    def test_qor_batch_scaling_is_coherent(self, tmp_path):
        spec = campaign_from_dict(spec_dict(network=["gru"], batch=[1, 8]))
        result = run_campaign(spec, store=ResultStore(tmp_path))
        by_batch = {row.point.batch: row.metrics for row in result.rows}
        b1, b8 = by_batch[1], by_batch[8]
        # batching amortizes static energy but can only add latency
        assert b8["latency_ms"] >= b1["latency_ms"]
        assert b8["energy_per_inf_j"] < b1["energy_per_inf_j"]
        assert b8["footprint_kb"] > b1["footprint_kb"]
        assert b8["throughput_rps"] == pytest.approx(
            8.0 / (b8["latency_ms"] / 1e3), rel=1e-4
        )
        from repro.platforms import make_config

        clock_ghz = make_config("gp102").clock_ghz
        # latency_ms is rounded to 6 decimals in the row, so allow a
        # few cycles of slack
        assert b1["cycles"] == pytest.approx(
            b1["latency_ms"] * clock_ghz * 1e6, abs=2.0
        )

    def test_failed_run_skips_points_not_campaign(self, tmp_path, monkeypatch):
        import repro.runs.executor as executor_mod

        real = executor_mod._simulate_spec

        def boom(spec, store):
            if spec.network == "gru":
                raise RuntimeError("injected")
            return real(spec, store)

        monkeypatch.setattr(executor_mod, "_simulate_spec", boom)
        spec = campaign_from_dict(spec_dict(batch=[1, 4]))
        result = run_campaign(spec, store=ResultStore(tmp_path))
        assert not result.ok
        assert len(result.skipped) == 2  # both gru batch points
        assert all(s["axes"]["network"] == "gru" for s in result.skipped)
        assert "injected" in result.skipped[0]["error"]
        # cifarnet still priced and on the frontier
        assert len(result.rows) == 2
        assert all(r.point.network == "cifarnet" for r in result.rows)

    def test_to_dict_roundtrips_through_json(self, tmp_path):
        spec = campaign_from_dict(spec_dict(network=["gru"]))
        result = run_campaign(spec, store=ResultStore(tmp_path))
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["campaign"] == "t"
        assert doc["unique_runs"] == 1
        assert doc["frontier"]["points"]
        assert doc["execution"]["failed"] == {}
