"""Serving study: scheduling policy vs. tail latency on a mixed fleet.

The deployment question the per-device characterization sets up: a
service runs AlexNet and ResNet inference on a small heterogeneous farm
— two GP102 server boards plus one Tegra X1 — at 100 requests/second
with a 50 ms SLO.  A load balancer that ignores device speed
(round-robin) drags the latency tail through the TX1, which is an order
of magnitude slower on these networks; the latency-aware scheduler
keeps the TX1 as spill-over capacity only and collapses p99 by orders
of magnitude.  This is the committed scenario behind the acceptance
claim that latency-aware beats round-robin on p99.

Run:  python examples/serving_study.py [--light]

Latency profiles come from the GPU simulator through the unified
result store (.repro-cache/), so the first run pays ~15 s of
simulation and repeats are instant.  --light uses light-sampling
profiles for a quick smoke run (same qualitative outcome).
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.gpu.config import SimOptions
from repro.runs import ResultStore
from repro.serve import PoissonWorkload, ServeConfig, build_fleet, build_profiles, run_serve

NETWORKS = ["alexnet", "resnet"]
FLEET_SPEC = "gp102:2,tx1"
RPS = 100.0
REQUESTS = 10_000
SLO_MS = 50.0
SCHEDULERS = ("round-robin", "least-loaded", "latency-aware")


def main() -> None:
    options = SimOptions()
    if "--light" in sys.argv[1:]:
        options = options.light()
    fleet = build_fleet(FLEET_SPEC)
    print(f"fleet: {', '.join(device.name for device in fleet)}")
    print("building latency profiles (cached after the first run)...")
    profiles = build_profiles(
        NETWORKS, [device.platform for device in fleet],
        options, ResultStore(),
    )
    for (network, platform), profile in sorted(profiles.items()):
        print(f"  {network:8s} on {platform:6s}: "
              f"batch-1 {profile.latency_ms(1):8.2f} ms, "
              f"batch-8 {profile.latency_ms(8):8.2f} ms")

    workload = PoissonWorkload(rps=RPS, requests=REQUESTS, networks=NETWORKS)
    base = ServeConfig(slo_ms=SLO_MS, max_batch=8, batch_timeout_ms=2.0, seed=7)
    runs = {
        name: run_serve(fleet, profiles, workload, replace(base, scheduler=name))
        for name in SCHEDULERS
    }

    print(f"\n{RPS:g} rps Poisson, {REQUESTS} requests, SLO {SLO_MS:g} ms:")
    print(f"  {'scheduler':14s} {'p50 ms':>9s} {'p99 ms':>11s} "
          f"{'goodput rps':>11s} {'tx1 share':>9s}")
    for name, stats in runs.items():
        tx1 = next(d for d in stats.devices if d.platform == "TX1")
        share = tx1.requests / stats.completed if stats.completed else 0.0
        print(f"  {name:14s} {stats.latency_p50_ms:9.2f} "
              f"{stats.latency_p99_ms:11.2f} {stats.goodput_rps:11.1f} "
              f"{share:9.1%}")

    rr = runs["round-robin"]
    la = runs["latency-aware"]
    assert la.latency_p99_ms < rr.latency_p99_ms, (
        "latency-aware should beat round-robin on p99"
    )
    print(f"\nlatency-aware beats round-robin on p99 by "
          f"{rr.latency_p99_ms / la.latency_p99_ms:,.0f}x: blind rotation "
          f"queues one third of the traffic on the slow TX1.")


if __name__ == "__main__":
    main()
