"""Export the generated CUDA C / OpenCL sources of the whole suite.

The released Tango artifact is a tree of ``.cu``/``.cl`` files plus
per-layer weight files; this example regenerates that tree from the
layer graphs so the suite can be compiled and run on real CUDA/OpenCL
hardware downstream.

Run:  python examples/export_suite_sources.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.codegen import export_suite


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("tango_sources")
    written = export_suite(out_dir)
    print(f"wrote {len(written)} files under {out_dir}/:")
    for path in written:
        size = path.stat().st_size
        print(f"  {path}  ({size:,} bytes)")
    print("\nEach <network>.cu holds the full inference kernel sequence;")
    print("CifarNet and AlexNet also get the OpenCL translation used for")
    print("the PynQ-Z1 FPGA deployment (paper Section III-D).")


if __name__ == "__main__":
    main()
