"""Cache design study: how much L1D does a DNN accelerator need?

The motivating scenario of the paper's Figure 2: an architect sizing the
L1 data cache of a new accelerator runs the suite across candidate
configurations — something only possible with framework-free benchmarks
that run on an architecture simulator.  This example sweeps the L1D from
bypassed to 4x the Pascal default for a CNN and an RNN and reports the
normalized execution times plus cache statistics.

Run:  python examples/cache_design_study.py [network ...]
"""

from __future__ import annotations

import sys

from repro.gpu import SimOptions, simulate_network
from repro.platforms import GP102

KB = 1024
SWEEP = (("No L1", 0), ("64KB", 64 * KB), ("128KB", 128 * KB), ("256KB", 256 * KB))


def study(network: str) -> None:
    print(f"== {network}: L1D sensitivity on the GP102 model ==")
    options = SimOptions().light()
    baseline = None
    for label, l1_size in SWEEP:
        result = simulate_network(network, GP102.with_l1(l1_size), options)
        total = result.aggregate()
        if baseline is None:
            baseline = result.total_cycles
        print(
            f"  {label:6s} normalized time {result.total_cycles / baseline:5.2f}  "
            f"L1 miss ratio {total.l1_miss_ratio:6.1%}  "
            f"L2 accesses {total.l2_accesses:12,.0f}"
        )
    print()


def main() -> None:
    networks = sys.argv[1:] or ["cifarnet", "gru"]
    for network in networks:
        study(network)
    print("Expected shape (paper Observation 2): the CNN speeds up")
    print("substantially with an L1D; the RNN barely moves.")


if __name__ == "__main__":
    main()
