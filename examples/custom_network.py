"""Bring your own network: extend the suite with a custom model.

The paper pitches Tango to "DNN algorithm researchers [who] can use this
benchmark suite to evaluate new algorithms by simply replacing the core
functions of individual layers".  This example defines a small custom
CNN (a CifarNet variant with an extra conv stage and a global-average
head), registers a launch mapping for it by reusing the CifarNet style,
runs functional inference, and characterizes its instruction mix.

Run:  python examples/custom_network.py
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import NetworkGraph, SequentialBuilder
from repro.core.inputs import synthetic_image
from repro.core.layers import Conv2D, Pool2D, Softmax
from repro.core.weights import synthesize_weights
from repro.kernels.compile import compile_network
from repro.kernels.mapping import _PLANNERS, _plan_cifarnet
from repro.profiling.instmix import kernel_histogram


def build_mini_net() -> NetworkGraph:
    """A 4-conv all-convolutional classifier over 32x32 RGB images."""
    graph = NetworkGraph("mininet", (3, 32, 32), display_name="MiniNet")
    net = SequentialBuilder(graph)
    net.add("conv1", Conv2D(out_channels=16, kernel=3, pad=1, relu=True))
    net.add("pool1", Pool2D(kind="max", kernel=2, stride=2))
    net.add("conv2", Conv2D(out_channels=32, kernel=3, pad=1, relu=True))
    net.add("pool2", Pool2D(kind="max", kernel=2, stride=2))
    net.add("conv3", Conv2D(out_channels=64, kernel=3, pad=1, relu=True))
    net.add("conv4", Conv2D(out_channels=10, kernel=1, relu=True))
    net.add("gap", Pool2D(global_pool=True))
    net.add("softmax", Softmax())
    return graph


def main() -> None:
    graph = build_mini_net()
    weights = synthesize_weights(graph)

    print("== Functional inference ==")
    out = graph.run(synthetic_image((3, 32, 32), seed=1), weights)
    print(f"  predicted class {int(np.argmax(out))} "
          f"(distribution sums to {out.sum():.4f})")

    # Reuse CifarNet's single-block mapping style for the custom net.
    _PLANNERS["mininet"] = _plan_cifarnet
    kernels = compile_network(graph)

    print("\n== Kernel launches ==")
    for kernel in kernels:
        print(f"  {kernel.name:8s} grid{kernel.grid} block{kernel.block} "
              f"regs={kernel.regs}")

    print("\n== Instruction mix (whole network) ==")
    from collections import Counter
    total: Counter = Counter()
    for kernel in kernels:
        for (op, _dtype), count in kernel_histogram(kernel).items():
            total[op.value] += count
    grand = sum(total.values())
    for op, count in total.most_common(8):
        print(f"  {op:6s} {count / grand:6.1%}")


if __name__ == "__main__":
    main()
