"""nvprof-style profiling report for one network on one platform.

The paper's Section IV workflow: run a network through the simulator
and read per-layer timing, stall, cache and power statistics.  This
example prints that report for any suite network.

Run:  python examples/profile_network.py [network] [platform]
      e.g. python examples/profile_network.py alexnet gk210
"""

from __future__ import annotations

import sys

from repro.gpu import SimOptions, simulate_network
from repro.platforms import get_platform
from repro.power import GpuWattchModel
from repro.profiling.nvprof import format_profile, profiles_from_result


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "cifarnet"
    platform = get_platform(sys.argv[2] if len(sys.argv) > 2 else "gp102")
    print(f"profiling {network} on {platform.name} ...")
    result = simulate_network(network, platform, SimOptions().light())
    model = GpuWattchModel(platform)

    print(f"\n== per-kernel timing (total {result.total_time_ms:.2f} ms) ==")
    total = result.total_cycles
    for k in result.kernels[:20]:
        stats = k.stats
        print(f"  {k.kernel.name:18s} {stats.cycles / total:6.1%}  "
              f"l1-miss {stats.l1_miss_ratio:5.1%}  "
              f"power {model.stats_power(stats).total:6.1f} W")
    if len(result.kernels) > 20:
        print(f"  ... and {len(result.kernels) - 20} more kernels")

    print("\n== stall breakdown per layer type ==")
    categories, summary = profiles_from_result(result)
    for profile in categories:
        print("  " + format_profile(profile))
    print("  " + format_profile(summary))

    print("\n== power breakdown by component ==")
    for comp, frac in sorted(
        model.network_breakdown(result).fractions().items(), key=lambda kv: -kv[1]
    )[:8]:
        print(f"  {comp:14s} {frac:6.1%}")


if __name__ == "__main__":
    main()
