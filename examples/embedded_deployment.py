"""Embedded deployment: GPU board or FPGA board?

The paper's Figure 6 scenario: you must deploy CifarNet (a traffic-sign
detector) and SqueezeNet on an embedded platform and care about energy.
This example runs both networks on the Jetson TX1 model and the PynQ-Z1
FPGA model, meters them the way the paper does (Wattsup peak power x
execution time), and prints the trade-off.

Run:  python examples/embedded_deployment.py
"""

from __future__ import annotations

from repro.core.suite import get_network
from repro.gpu import SimOptions, simulate_network
from repro.platforms import TX1, PynqZ1Model
from repro.power import WattsupMeter


def main() -> None:
    meter = WattsupMeter(TX1)
    fpga = PynqZ1Model()
    print(f"{'network':12s} {'platform':8s} {'time':>9s} {'peak':>7s} {'energy':>9s}")
    for name in ("cifarnet", "squeezenet"):
        gpu_run = simulate_network(name, TX1, SimOptions().light())
        tx1 = meter.measure(gpu_run)
        pynq = fpga.run_network(get_network(name))
        print(f"{name:12s} {'TX1':8s} {tx1.time_s * 1e3:7.1f}ms "
              f"{tx1.peak_watts:6.2f}W {tx1.energy_j * 1e3:7.1f}mJ")
        print(f"{'':12s} {'PynQ-Z1':8s} {pynq.time_s * 1e3:7.1f}ms "
              f"{pynq.peak_watts:6.2f}W {pynq.energy_j * 1e3:7.1f}mJ")
        winner = "PynQ-Z1" if pynq.energy_j < tx1.energy_j else "TX1"
        print(f"{'':12s} -> {winner} is the more energy-efficient choice "
              f"(TX1 is {pynq.time_s / tx1.time_s:.1f}x faster but draws "
              f"{tx1.peak_watts / pynq.peak_watts:.1f}x the peak power)\n")


if __name__ == "__main__":
    main()
