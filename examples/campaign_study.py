"""Campaign walkthrough: the Figure-2 L1D study as a Pareto question.

``examples/cache_design_study.py`` asks Figure 2's question the
figure's way: normalized execution time per L1D size, one network at a
time.  This walkthrough asks the architect's version of the same
question with the campaign subsystem: across every (network, L1D,
scheduler, batch) combination, which designs are *non-dominated* on
latency x energy-per-inference x memory footprint — and how sensitive
is each axis?

It loads the committed campaign spec (``l1_sweep_campaign.toml``, 756
points deduping to 84 unique light simulations), runs it through the
shared result store (a second invocation simulates nothing), prints the
per-axis QoR tables and the frontier, and diffs against the committed
golden frontier — the same gate CI's campaign-smoke job applies to the
small smoke campaign.

Run:  PYTHONPATH=src python examples/campaign_study.py [spec.toml]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.campaign import (
    compare_frontiers,
    format_campaign,
    format_compare,
    load_campaign,
    run_campaign,
)
from repro.runs import ResultStore

EXAMPLES = Path(__file__).parent


def main() -> int:
    spec_path = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        EXAMPLES / "l1_sweep_campaign.toml"
    )
    spec = load_campaign(spec_path)

    # Execute through the shared store: cold ~30s at light fidelity,
    # warm re-runs are free (0 fresh simulations).
    result = run_campaign(spec, store=ResultStore(), jobs=4, verbose=True)
    print()
    print(format_campaign(result))
    print()

    # Observation 2, read off the "by network" table: the RNNs (GRU,
    # LSTM) hit their best latency regardless of L1; the CNNs need it.
    # The frontier adds what Figure 2 cannot show: large batches win
    # energy-per-inference but pay latency and footprint, so both ends
    # of the batch axis survive as non-dominated designs.

    golden_path = spec_path.with_name(
        spec_path.stem.replace("_campaign", "") + "_frontier.json"
    )
    if not golden_path.exists():
        print(f"(no golden frontier at {golden_path}; skipping the gate)")
        return 0
    golden = json.loads(golden_path.read_text())
    report = compare_frontiers(golden, result.frontier_payload())
    print(format_compare(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
