"""Quickstart: run the Tango suite end to end.

Loads the seven benchmark networks, runs one inference each through the
framework-free NumPy layer implementations, compiles each network to its
CUDA-like kernel launch sequence (the paper's Table III view), and
simulates one network on the GPGPU-Sim-style GPU model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TangoSuite
from repro.gpu import SimOptions, simulate_network
from repro.kernels.compile import compiled_network
from repro.platforms import GP102


def main() -> None:
    suite = TangoSuite()

    print("== 1. Functional inference (framework-free NumPy kernels) ==")
    for bench in suite:
        output = bench.run()
        if bench.info.kind == "cnn":
            top = int(np.argmax(output))
            print(f"  {bench.info.display_name:10s} -> class {top:4d} "
                  f"(p={output[top]:.3f}, {output.shape[0]} classes)")
        else:
            print(f"  {bench.info.display_name:10s} -> projected next price "
                  f"{float(output[0]):.4f} (scaled)")

    print("\n== 2. Kernel view (Table III): CifarNet's launch sequence ==")
    for kernel in compiled_network("cifarnet"):
        print(f"  {kernel.name:10s} grid{kernel.grid} block{kernel.block} "
              f"regs={kernel.regs} smem={kernel.smem_bytes}B "
              f"dyn_instr={kernel.dynamic_instructions():,}")

    print("\n== 3. Architectural simulation: CifarNet on the Pascal GP102 model ==")
    result = simulate_network("cifarnet", GP102, SimOptions().light())
    print(f"  end-to-end: {result.total_time_ms:.3f} ms "
          f"({result.total_cycles:,.0f} cycles at {GP102.clock_ghz} GHz)")
    for category, cycles in sorted(
        result.cycles_by_category().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {category:10s} {cycles / result.total_cycles:6.1%} of time")


if __name__ == "__main__":
    main()
