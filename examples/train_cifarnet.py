"""Training-phase extension: a few SGD steps on a CifarNet-style model.

The paper ships inference only and lists back-propagation as planned
work ("we plan to extend the suite to also provide back-propagation
code for training phase", Section II-C).  This example exercises that
extension: a small conv/pool/FC classifier is trained for a handful of
SGD steps on synthetic labelled images using the backward passes of
``repro.core.layers.backward``, and the cross-entropy loss falls.

Run:  python examples/train_cifarnet.py
"""

from __future__ import annotations

import numpy as np

from repro.core.inputs import synthetic_image
from repro.core.layers import backward as B
from repro.core.layers import functional as F

CLASSES = 4
LEARNING_RATE = 0.05
STEPS = 30


def make_dataset(n: int = 16) -> list[tuple[np.ndarray, int]]:
    """Synthetic images whose class is encoded in their dominant band."""
    samples = []
    for i in range(n):
        label = i % CLASSES
        image = synthetic_image((3, 16, 16), seed=100 + i).astype(np.float64)
        image[0] += 0.5 * label / CLASSES  # learnable signal
        samples.append((image, label))
    return samples


def forward(x, params):
    """conv(8,3x3) -> relu -> maxpool2 -> fc -> softmax, keeping context."""
    conv = F.conv2d(x, params["w1"], params["b1"], pad=1)
    act = F.relu(conv)
    pooled = F.max_pool2d(act, kernel=2, stride=2)
    logits = F.fully_connected(pooled, params["w2"], params["b2"])
    probs = F.softmax(logits)
    return probs, (x, conv, act, pooled)


def backward(probs, label, params, ctx):
    """Gradients of cross-entropy w.r.t. every parameter."""
    x, conv, act, pooled = ctx
    d_logits = B.softmax_cross_entropy_backward(probs, label)
    d_pooled, d_w2, d_b2 = B.fc_backward(d_logits, pooled, params["w2"])
    d_act = B.max_pool2d_backward(d_pooled, act, kernel=2, stride=2)
    d_conv = B.relu_backward(d_act, conv)
    _, d_w1, d_b1 = B.conv2d_backward(d_conv, x, params["w1"], pad=1)
    return {"w1": d_w1, "b1": d_b1, "w2": d_w2, "b2": d_b2}


def main() -> None:
    rng = np.random.default_rng(0)
    params = {
        "w1": rng.normal(0, 0.3, size=(8, 3, 3, 3)),
        "b1": np.zeros(8),
        "w2": rng.normal(0, 0.05, size=(CLASSES, 8 * 8 * 8)),
        "b2": np.zeros(CLASSES),
    }
    data = make_dataset()
    print(f"training a small conv net on {len(data)} synthetic images ...")
    first_loss = None
    for step in range(STEPS):
        loss = 0.0
        correct = 0
        grads = {k: np.zeros_like(v) for k, v in params.items()}
        for image, label in data:
            probs, ctx = forward(image, params)
            loss += -np.log(max(probs[label], 1e-12))
            correct += int(np.argmax(probs) == label)
            for key, grad in backward(probs, label, params, ctx).items():
                grads[key] += grad / len(data)
        loss /= len(data)
        if first_loss is None:
            first_loss = loss
        for key in params:
            params[key] -= LEARNING_RATE * grads[key]
        if step % 5 == 0 or step == STEPS - 1:
            print(f"  step {step:3d}  loss {loss:.4f}  acc {correct}/{len(data)}")
    print(f"\nloss fell from {first_loss:.4f} to {loss:.4f} — the "
          "back-propagation extension trains.")


if __name__ == "__main__":
    main()
