"""Serving at scale: the day-in-the-life scenario, end to end.

Loads ``examples/day_in_the_life.toml`` — one million requests over a
100-device GP102 fleet, three tenants (diurnal interactive traffic,
bursty RNN scoring, a closed-loop reporting job), SLO-aware admission
and queue-depth autoscaling — runs it through the fast event loop, and
prints the per-tenant SLO attainment, cost-per-request and shed
breakdown that ``repro serve --json`` exposes.

Run:  python examples/serving_at_scale.py [--verify]

``--verify`` re-runs the identical scenario through the reference
binary-heap event loop and asserts the stats digests match bit for bit
(roughly doubles the runtime).  Latency profiles are built at light
fidelity through the unified result store (.repro-cache/), so the
first run pays a few seconds of simulation and repeats are instant;
the serving simulation itself handles the million requests in tens of
seconds of wall clock.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.gpu.config import SimOptions
from repro.platforms import get_platform
from repro.runs import ResultStore
from repro.serve import build_profiles, load_scenario, run_serve

SCENARIO = Path(__file__).parent / "day_in_the_life.toml"


def main() -> None:
    scenario = load_scenario(SCENARIO)
    fleet = scenario.fleet()
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(f"fleet: {len(fleet)} x {fleet[0].platform.name}, "
          f"autoscale [{scenario.autoscale.min_devices}, "
          f"{scenario.autoscale.max_devices}]")

    print("building latency profiles (cached after the first run)...")
    platforms = [device.platform for device in fleet]
    platforms.append(get_platform(scenario.autoscale.template))
    profiles = build_profiles(
        list(scenario.networks), platforms, SimOptions().light(), ResultStore(),
    )

    start = time.perf_counter()
    stats = run_serve(
        fleet, profiles, scenario.workload(), scenario.config,
        pipeline=scenario.pipeline(), loop=scenario.loop,
    )
    wall_s = time.perf_counter() - start
    print(f"\n{stats.offered:,} requests in {wall_s:.1f} s of wall clock "
          f"({stats.offered / wall_s:,.0f} req/s through the engine); "
          f"{stats.duration_ms / 1e3:.0f} s simulated")
    print(f"completed={stats.completed:,} shed={stats.shed:,} "
          f"goodput={stats.goodput_rps:,.0f} rps")
    if stats.shed_reasons:
        print("shed by reason: " + " ".join(
            f"{reason}={count:,}" for reason, count in stats.shed_reasons.items()
        ))
    print(f"energy: {stats.energy['total_j'] / 1e3:.1f} kJ total, "
          f"{stats.energy['cost_per_request_j']:.3f} J/request fleet-wide")
    scale = stats.autoscale
    print(f"autoscale: {len(scale['events'])} actions, "
          f"peak {scale['peak_devices']} devices, "
          f"final {scale['final_devices']}")

    print(f"\n{'tenant':12s} {'slo ms':>7s} {'offered':>9s} {'shed':>7s} "
          f"{'p99 ms':>8s} {'attain':>7s} {'goodput':>8s} {'J/req':>7s}")
    for tenant in stats.per_tenant.values():
        print(f"{tenant.name:12s} {tenant.slo_ms:7g} {tenant.offered:9,d} "
              f"{tenant.shed:7,d} {tenant.latency_p99_ms:8.2f} "
              f"{tenant.slo_attainment:7.4f} {tenant.goodput_ratio:8.4f} "
              f"{tenant.cost_per_request_j:7.3f}")

    if "--verify" in sys.argv[1:]:
        print("\nre-running through the reference heap loop...")
        start = time.perf_counter()
        reference = run_serve(
            fleet, profiles, scenario.workload(), scenario.config,
            pipeline=scenario.pipeline(), loop="heap",
        )
        print(f"heap loop: {time.perf_counter() - start:.1f} s")
        assert reference.digest() == stats.digest(), "event loops diverged!"
        print(f"digests match: {stats.digest()[:16]}...")


if __name__ == "__main__":
    main()
